//! Whole-network assembly and cycle-accurate simulation.
//!
//! [`Noc::new`] performs what the xpipesCompiler's *simulation view* does:
//! from a validated [`NocSpec`] it instantiates one switch per topology
//! node (sized to the ports actually used), one NI per attachment
//! (programming its routing LUT from the computed routing tables), and one
//! pipelined link per directed channel, then wires them together.
//!
//! Each [`step`](Noc::step) advances one clock cycle in four phases that
//! together model the register boundaries of the RTL:
//!
//! 1. all links shift (flits/ACKs advance one pipeline stage),
//! 2. all producers transmit (output registers drive the links),
//! 3. all switches run allocation + crossbar traversal,
//! 4. all consumers receive (input registers capture arrivals and return
//!    ACK/nACK replies).

use std::collections::{BTreeMap, HashMap};

use xpipes_ocp::{Request, Response, SlaveMemory};
use xpipes_sim::attribution::{
    AttributionEngine, AttributionSummary, ChannelConsumer as AttrConsumer,
    ChannelInfo as AttrChannel,
};
use xpipes_sim::json::Json;
use xpipes_sim::telemetry::{
    perfetto_trace_with, CongestionTimeline, FlightRecorder, MetricId, MetricsRegistry,
    TelemetrySummary, TraceEvent, TraceEventKind,
};
use xpipes_sim::trace::{SignalId, VcdWriter};
use xpipes_sim::{
    ActiveSet, Cycle, EventWheel, FallbackReason, FaultPlan, KernelHealth, KernelPhase,
    KernelProfile, RunningStats, SimRng, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter,
};
use xpipes_topology::spec::NocSpec;
use xpipes_topology::{NiId, NiKind, SwitchId};

use crate::config::{LinkConfig, NiConfig, SwitchConfig};
use crate::error::XpipesError;
use crate::flow_control::{default_ack_timeout, AckNack, FlowSabotage, LinkFlit, LinkRx, LinkTx};
use crate::link::Link;
use crate::monitor::{InvariantViolation, MonitorConfig, ProtocolMonitor};
use crate::ni::{InitiatorNi, NiStats, TargetNi};
use crate::snap;
use crate::switch::{Switch, SwitchStats};

/// One side of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    /// A switch port (output when producing, input when consuming).
    SwitchPort { switch: usize, port: usize },
    /// An initiator NI (by dense index).
    Initiator(usize),
    /// A target NI (by dense index).
    Target(usize),
}

/// Flat structure-of-arrays channel state: the per-cycle hot data of
/// every directed channel lives in parallel contiguous arrays indexed
/// by dense channel id, instead of one struct per channel.
///
/// The step phases touch exactly one or two of these arrays each, so
/// an event-driven step streams through only the fields it needs for
/// only the channels that are scheduled — see `docs/kernel.md` for the
/// layout and indexing contract. Checkpoints serialize this state
/// per-channel in the original field order (link, fwd latch, rev
/// latch, fwd arrival, rev arrival), so the container format is
/// byte-identical to the per-channel-object layout it replaced.
#[derive(Debug, Clone, Default)]
struct Channels {
    /// Pipelined link of each channel.
    link: Vec<Link>,
    /// Producing endpoint of each channel (drives the forward pipe).
    producer: Vec<Endpoint>,
    /// Consuming endpoint of each channel (sinks the forward pipe).
    consumer: Vec<Endpoint>,
    /// Forward flit driven into the link at phase 2, shifted at the
    /// next cycle's phase 1.
    fwd_latch: Vec<Option<LinkFlit>>,
    /// ACK/nACK reply driven at phase 4, shifted at the next phase 1.
    rev_latch: Vec<Option<AckNack>>,
    /// Forward flit that left the pipe this cycle (phase 1 → phase 4).
    fwd_arrival: Vec<Option<LinkFlit>>,
    /// ACK/nACK that left the pipe this cycle (phase 1 → phase 2).
    rev_arrival: Vec<Option<AckNack>>,
}

impl Channels {
    fn len(&self) -> usize {
        self.link.len()
    }

    fn push(&mut self, link: Link, producer: Endpoint, consumer: Endpoint) {
        self.link.push(link);
        self.producer.push(producer);
        self.consumer.push(consumer);
        self.fwd_latch.push(None);
        self.rev_latch.push(None);
        self.fwd_arrival.push(None);
        self.rev_arrival.push(None);
    }
}

/// Aggregate network statistics.
#[derive(Debug, Clone)]
pub struct NocStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Packets injected by all NIs.
    pub packets_sent: u64,
    /// Packets fully reassembled at their destination NI.
    pub packets_delivered: u64,
    /// Flits moved through switch crossbars.
    pub flits_routed: u64,
    /// Flits retransmitted by the ACK/nACK protocol (all senders: switch
    /// output ports and NI network ports).
    pub retransmissions: u64,
    /// Flits corrupted by link error injection.
    pub flits_corrupted: u64,
    /// Reverse-channel ACK/nACK messages dropped by fault injection.
    pub acks_dropped: u64,
    /// Reverse-channel ACK/nACK messages corrupted (and discarded).
    pub acks_corrupted: u64,
    /// ACK timeouts fired by senders (full-window rewinds).
    pub ack_timeouts: u64,
    /// Cycles switch outputs spent in injected transient stalls.
    pub stall_cycles: u64,
    /// Transaction round-trip latency distribution (initiator-observed).
    pub transaction_latency: RunningStats,
    /// Request one-way delivery latency distribution (target-observed).
    pub request_latency: RunningStats,
    /// Transaction latency histogram (cycles), for percentiles.
    pub latency_histogram: xpipes_sim::Histogram,
}

impl Default for NocStats {
    fn default() -> Self {
        let (lo, hi, buckets) = crate::ni::NiStats::HIST_RANGE;
        NocStats {
            cycles: 0,
            packets_sent: 0,
            packets_delivered: 0,
            flits_routed: 0,
            retransmissions: 0,
            flits_corrupted: 0,
            acks_dropped: 0,
            acks_corrupted: 0,
            ack_timeouts: 0,
            stall_cycles: 0,
            transaction_latency: RunningStats::new(),
            request_latency: RunningStats::new(),
            latency_histogram: xpipes_sim::Histogram::new(lo, hi, buckets),
        }
    }
}

/// Waveform capture state: one valid-bit and one packet-id byte per
/// channel.
struct TraceState {
    vcd: VcdWriter,
    valid: Vec<SignalId>,
    packet: Vec<SignalId>,
}

/// Telemetry configuration for [`Noc::enable_telemetry`].
///
/// Unlike tracing and the protocol monitor, telemetry does **not**
/// disable the activity fast path: metrics are epoch-aggregated (the
/// engine scans component counters once every `sample_interval` cycles)
/// and the flight recorder only sees events from channels the engine
/// actually touched — a skipped channel is provably inert and produces
/// none. No RNG stream is read, so simulated behaviour is bit-identical
/// with telemetry on or off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Cycles between registry samples (and timeline windows).
    pub sample_interval: u64,
    /// Record a time-windowed congestion timeline (per-link utilization
    /// and per-switch queue depth).
    pub timeline: bool,
    /// Flight-recorder capacity in events; 0 disables the recorder.
    pub flight_recorder_depth: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            sample_interval: 64,
            timeline: false,
            flight_recorder_depth: 0,
        }
    }
}

impl TelemetryConfig {
    /// Everything on: timeline plus a generously sized flight recorder.
    pub fn full() -> Self {
        TelemetryConfig {
            sample_interval: 64,
            timeline: true,
            flight_recorder_depth: 4096,
        }
    }
}

/// Metric handles of one switch.
struct SwitchMetrics {
    flits: MetricId,
    grants: MetricId,
    denials: MetricId,
    retx: MetricId,
    timeouts: MetricId,
    queue: MetricId,
}

/// Metric handles of one channel (link + its producer/consumer view).
struct ChannelMetrics {
    traversals: MetricId,
    corrupted: MetricId,
    retx: MetricId,
    acks: MetricId,
    nacks: MetricId,
}

/// Metric handles of one NI.
struct NiMetrics {
    packets: MetricId,
    flits: MetricId,
    stalls: MetricId,
}

/// Everything telemetry: the registry plus the component→metric handle
/// maps, the optional timeline, and the optional flight recorder.
struct TelemetryState {
    config: TelemetryConfig,
    registry: MetricsRegistry,
    sw_metrics: Vec<SwitchMetrics>,
    ch_metrics: Vec<ChannelMetrics>,
    ini_metrics: Vec<NiMetrics>,
    tgt_metrics: Vec<NiMetrics>,
    timeline: Option<CongestionTimeline>,
    /// Per-channel traversal count at the last sample, for window deltas.
    last_traversals: Vec<u64>,
    /// First cycle of the currently accumulating timeline window.
    window_start: u64,
    flight: Option<FlightRecorder>,
}

/// The event-driven step scheduler: which components have (or may
/// have) work next cycle, plus the cached idle-blocker census.
///
/// The membership rules are conservative supersets of the legacy
/// activity-refresh predicate — processing an extra provably-inert
/// component is a no-op (it moves no flit and draws no RNG), but a
/// component with work is never missed. The blocker bits cache each
/// component's contribution to [`Noc::is_idle`], re-evaluated only for
/// components a step actually touched, so `is_idle` stays O(1) without
/// the O(network) per-cycle rescan the old fast path paid.
struct Scheduler {
    /// The sets/wheel/blockers are coherent with current state.
    /// Invalidated by out-of-band mutation (slow-path steps, restore,
    /// stall/sabotage hooks); rebuilt by a full scan on the next
    /// fast-path step.
    valid: bool,
    /// Channels to process in the next step's phases 1/2/4.
    chan_sched: ActiveSet,
    /// Switches whose input side holds a flit: crossbar next step.
    sw_sched: ActiveSet,
    /// Initiator NIs with a non-empty submit backlog (their tick can
    /// make progress; all other initiator ticks are provable no-ops).
    ini_pending: ActiveSet,
    /// Wake-ups for target NI latency queues: one live event per
    /// target with a non-empty queue, at its head's ready cycle.
    /// Head-of-line draining makes the head's ready cycle exact.
    tgt_wake: EventWheel<usize>,
    /// Count of idle blockers; zero ⇔ the network is idle.
    idle_blockers: usize,
    /// Cached per-component blocker bits (the component's current
    /// contribution to `idle_blockers`).
    blocking_chan: Vec<bool>,
    blocking_sw: Vec<bool>,
    blocking_ini: Vec<bool>,
    blocking_tgt: Vec<bool>,
    /// Scratch: swapped with `chan_sched`/`sw_sched` at step start so
    /// next-cycle membership accumulates while this cycle's is walked.
    chan_scratch: ActiveSet,
    sw_scratch: ActiveSet,
    /// Switches touched this step (transmit/crossbar/receive), whose
    /// activity and blocker bit need re-evaluation.
    sw_cand: ActiveSet,
    /// NIs touched this step, for blocker re-evaluation.
    ini_touched: ActiveSet,
    tgt_touched: ActiveSet,
    /// Reusable iteration buffers (no per-step allocation).
    ini_buf: Vec<usize>,
    sw_buf: Vec<usize>,
    ni_buf: Vec<usize>,
    wake_buf: Vec<(u64, usize)>,
}

impl Scheduler {
    fn new(channels: usize, switches: usize, initiators: usize, targets: usize) -> Self {
        Scheduler {
            valid: false,
            chan_sched: ActiveSet::new(channels),
            sw_sched: ActiveSet::new(switches),
            ini_pending: ActiveSet::new(initiators),
            tgt_wake: EventWheel::new(),
            idle_blockers: 0,
            blocking_chan: vec![false; channels],
            blocking_sw: vec![false; switches],
            blocking_ini: vec![false; initiators],
            blocking_tgt: vec![false; targets],
            chan_scratch: ActiveSet::new(channels),
            sw_scratch: ActiveSet::new(switches),
            sw_cand: ActiveSet::new(switches),
            ini_touched: ActiveSet::new(initiators),
            tgt_touched: ActiveSet::new(targets),
            ini_buf: Vec::new(),
            sw_buf: Vec::new(),
            ni_buf: Vec::new(),
            wake_buf: Vec::new(),
        }
    }
}

/// Closes one profiled segment: charges the time since `mark` to
/// `phase` and restarts the mark. A no-op (no `Instant` taken) when
/// profiling is disabled.
#[inline]
fn prof_mark(
    prof: &mut Option<Box<KernelProfile>>,
    mark: &mut Option<std::time::Instant>,
    phase: KernelPhase,
) {
    if let (Some(p), Some(t)) = (prof.as_deref_mut(), mark.as_mut()) {
        let now = std::time::Instant::now();
        p.note(phase, now.duration_since(*t));
        *t = now;
    }
}

/// Updates one cached blocker bit and the blocker count it feeds.
fn note_blocker(count: &mut usize, slot: &mut bool, blocking: bool) {
    if *slot != blocking {
        *slot = blocking;
        if blocking {
            *count += 1;
        } else {
            *count -= 1;
        }
    }
}

/// Step phase 2 for one channel: the producer consumes the reverse
/// arrival and drives the forward latch. Shared verbatim between the
/// reference and event kernels so observer hooks (monitor, attribution,
/// flight recorder) fire identically on both.
#[allow(clippy::too_many_arguments)]
#[inline]
fn phase2_transmit(
    i: usize,
    chan: &mut Channels,
    switches: &mut [Switch],
    initiators: &mut [InitiatorNi],
    targets: &mut [TargetNi],
    monitor: Option<&mut ProtocolMonitor>,
    attr: Option<&mut AttributionEngine>,
    flight: Option<&mut FlightRecorder>,
    cycle: u64,
) {
    let rev = chan.rev_arrival[i].take();
    let out = match chan.producer[i] {
        Endpoint::SwitchPort { switch, port } => switches[switch].transmit(port, rev),
        Endpoint::Initiator(idx) => initiators[idx].transmit(rev),
        Endpoint::Target(idx) => targets[idx].transmit(rev),
    };
    if let (Some(m), Some(lf)) = (monitor, &out) {
        m.note_transmit(i, lf.seq, &lf.flit, cycle);
    }
    if let (Some(a), Some(lf)) = (attr, &out) {
        a.note_transmit(
            i,
            lf.flit.meta.packet_id,
            lf.seq,
            lf.flit.kind.is_head(),
            lf.flit.kind.is_tail(),
            lf.flit.meta.injected_at.as_u64(),
            lf.flit.meta.src_ni as usize,
            cycle,
        );
    }
    if let (Some(fr), Some(lf)) = (flight, &out) {
        let kind = fr.classify_transmit(i, lf.seq);
        fr.record(TraceEvent {
            cycle,
            channel: i as u32,
            packet_id: lf.flit.meta.packet_id,
            injected_at: lf.flit.meta.injected_at.as_u64(),
            seq: lf.seq,
            kind,
        });
    }
    chan.fwd_latch[i] = out;
}

/// Step phase 4 for one channel: the consumer sinks the forward arrival
/// and drives the reverse latch. Shared verbatim between the reference
/// and event kernels.
#[allow(clippy::too_many_arguments)]
#[inline]
fn phase4_receive(
    i: usize,
    chan: &mut Channels,
    switches: &mut [Switch],
    initiators: &mut [InitiatorNi],
    targets: &mut [TargetNi],
    monitor: Option<&mut ProtocolMonitor>,
    attr: Option<&mut AttributionEngine>,
    flight: Option<&mut FlightRecorder>,
    cycle: u64,
    now: Cycle,
) {
    let fwd = chan.fwd_arrival[i].take();
    let consumer = chan.consumer[i];
    if let (Some(fr), Some(lf)) = (flight, &fwd) {
        // Wire-level classification: a corrupted flit will be nACKed; an
        // intact tail reaching an NI leaves the network. (A stale
        // duplicate still logs an arrival — the recorder shows what
        // crossed the link.)
        let kind = if lf.corrupted {
            TraceEventKind::CorruptArrival
        } else if !matches!(consumer, Endpoint::SwitchPort { .. }) && lf.flit.kind.is_tail() {
            TraceEventKind::Deliver
        } else {
            TraceEventKind::Arrival
        };
        fr.record(TraceEvent {
            cycle,
            channel: i as u32,
            packet_id: lf.flit.meta.packet_id,
            injected_at: lf.flit.meta.injected_at.as_u64(),
            seq: lf.seq,
            kind,
        });
    }
    // An accept is visible as a bump of the receiver's counter; the
    // accepted flit is then the arriving one (`fwd` is `Copy`, so
    // watching it costs nothing and nothing is cloned).
    let rx_accepted =
        |switches: &[Switch], initiators: &[InitiatorNi], targets: &[TargetNi]| match consumer {
            Endpoint::SwitchPort { switch, port } => switches[switch].link_rx(port).accepted(),
            Endpoint::Initiator(idx) => initiators[idx].link_rx().accepted(),
            Endpoint::Target(idx) => targets[idx].link_rx().accepted(),
        };
    let watch_accepts = monitor.is_some() || attr.is_some();
    let accepted_before = if watch_accepts {
        rx_accepted(switches, initiators, targets)
    } else {
        0
    };
    let reply = match consumer {
        Endpoint::SwitchPort { switch, port } => switches[switch].receive(port, fwd),
        Endpoint::Initiator(idx) => initiators[idx].receive(fwd, now),
        Endpoint::Target(idx) => targets[idx].receive(fwd, now),
    };
    if watch_accepts && rx_accepted(switches, initiators, targets) > accepted_before {
        if let Some(lf) = fwd {
            if let Some(m) = monitor {
                m.note_accept(i, &lf.flit, cycle);
            }
            if let Some(a) = attr {
                if lf.flit.kind.is_tail() {
                    a.note_accept(i, lf.flit.meta.packet_id, cycle);
                }
            }
        }
    }
    chan.rev_latch[i] = reply;
}

/// An assembled, runnable xpipes network.
///
/// See the crate-level documentation for a complete example.
pub struct Noc {
    switches: Vec<Switch>,
    initiators: Vec<InitiatorNi>,
    targets: Vec<TargetNi>,
    chan: Channels,
    /// Channel produced by each (switch, output port), `usize::MAX` for
    /// unconnected ports — the crossbar's follow-on-work wake map.
    sw_out_chan: Vec<Vec<usize>>,
    initiator_index: HashMap<NiId, usize>,
    target_index: HashMap<NiId, usize>,
    now: Cycle,
    name: String,
    trace: Option<TraceState>,
    /// Epoch-sampled metrics / timeline / flight recorder. Boxed so the
    /// sampling take-put dance moves one pointer, and deliberately NOT
    /// part of [`fast_path`](Self::fast_path)'s gate.
    telemetry: Option<Box<TelemetryState>>,
    faults: FaultPlan,
    /// Dedicated RNG stream for network-level fault injection (output
    /// stalls), kept separate from the per-link streams so enabling one
    /// fault model never perturbs another.
    fault_rng: SimRng,
    /// Hoisted from the plan at assembly: fault-free runs never enter the
    /// per-cycle stall loop, so they never touch `fault_rng`.
    stall_faults: bool,
    monitor: Option<ProtocolMonitor>,
    /// Per-packet latency attribution ledger. Boxed like telemetry, and
    /// like it deliberately NOT part of [`fast_path`](Self::fast_path)'s
    /// gate: skipped channels transmit and accept nothing, so skipping
    /// them loses no attribution event.
    attribution: Option<Box<AttributionEngine>>,
    /// Channel produced by each initiator NI (dense index), so `submit`
    /// can update the schedule incrementally instead of forcing a full
    /// rebuild.
    initiator_chan: Vec<usize>,
    /// Channel produced by each target NI (dense index), for
    /// `raise_interrupt`.
    target_chan: Vec<usize>,
    /// Event-driven step schedule (see [`Scheduler`]).
    sched: Scheduler,
    /// Deterministic per-run dispatch counters (see [`KernelHealth`]).
    /// Always on (plain counter bumps), never serialized into
    /// checkpoints, and never folded into byte-compared artifacts.
    health: KernelHealth,
    /// Opt-in wall-clock phase profiler. `None` means the kernel takes
    /// no timestamps at all; boxed so the take-put dance moves one
    /// pointer like the telemetry state.
    profile: Option<Box<KernelProfile>>,
}

impl Noc {
    /// Instantiates the network described by `spec` with a default RNG
    /// seed for link error injection.
    ///
    /// # Errors
    ///
    /// Propagates specification validation and routing failures.
    pub fn new(spec: &NocSpec) -> Result<Self, XpipesError> {
        Self::with_seed(spec, 0xC0FFEE)
    }

    /// Instantiates the network with an explicit error-injection seed.
    ///
    /// # Errors
    ///
    /// Propagates specification validation and routing failures.
    pub fn with_seed(spec: &NocSpec, seed: u64) -> Result<Self, XpipesError> {
        Self::assemble(spec, seed, FaultPlan::none())
    }

    /// Instantiates the network with a fault-injection plan: forward-flit
    /// corruption (single or burst) on every link, reverse-channel
    /// ACK/nACK loss and corruption, and transient stalls at switch
    /// outputs. Non-benign plans arm the senders' ACK timeout so the
    /// protocol stays live when the reverse channel itself is lossy.
    ///
    /// # Errors
    ///
    /// Propagates specification validation and routing failures.
    pub fn with_faults(spec: &NocSpec, seed: u64, faults: &FaultPlan) -> Result<Self, XpipesError> {
        Self::assemble(spec, seed, faults.clamped())
    }

    fn assemble(spec: &NocSpec, seed: u64, faults: FaultPlan) -> Result<Self, XpipesError> {
        spec.validate()?;
        let tables = spec.routing_tables()?;
        let topo = &spec.topology;
        let master_rng = SimRng::seed(seed);
        // Lossy reverse channels can silently starve a sender; arm the
        // ACK timeout whenever any fault model is active. Benign plans
        // keep it off so fault-free behaviour is bit-identical to before.
        let arm_timeout = !faults.is_benign();
        // The link-level view of the plan: the spec's legacy error rate
        // feeds single-flit corruption unless the plan sets its own.
        let mut link_plan = faults;
        if link_plan.flit_corruption_rate == 0.0 {
            link_plan.flit_corruption_rate = spec.link_error_rate;
            link_plan.corruption_burst_len = 1;
        }

        // Switches, sized to the ports their node actually uses. One
        // pass over the links/NIs computes every switch's radix and the
        // global pipeline maximum (the old per-switch rescan was
        // O(switches × links) — ruinous at 64x64).
        let mut max_ports = vec![0usize; topo.switch_count()];
        let mut link_pipeline = 1u32;
        for l in topo.links() {
            max_ports[l.from.0] = max_ports[l.from.0].max(l.from_port.0 as usize);
            max_ports[l.to.0] = max_ports[l.to.0].max(l.to_port.0 as usize);
            link_pipeline = link_pipeline.max(l.pipeline_stages);
        }
        for ni in topo.nis() {
            max_ports[ni.switch.0] = max_ports[ni.switch.0].max(ni.port.0 as usize);
        }
        let mut switches = Vec::with_capacity(topo.switch_count());
        for s in topo.switches() {
            let max_port = max_ports[s.0];
            let mut cfg = SwitchConfig::new(max_port + 1, max_port + 1, spec.flit_width);
            cfg.output_queue_depth = spec.queue_depth_of(s) as usize;
            cfg.arbitration = spec.arbitration;
            cfg.link_pipeline = link_pipeline;
            if arm_timeout {
                cfg.ack_timeout = Some(default_ack_timeout(cfg.retransmit_depth()));
            }
            switches.push(Switch::with_extra_stages(
                cfg,
                spec.extra_switch_stages as usize,
            ));
        }

        // NIs with their LUTs.
        let mut initiators = Vec::new();
        let mut targets = Vec::new();
        let mut initiator_index = HashMap::new();
        let mut target_index = HashMap::new();
        let mut ni_cfg = NiConfig::new(spec.flit_width);
        if arm_timeout {
            ni_cfg.ack_timeout = Some(default_ack_timeout((2 * ni_cfg.link_pipeline + 2) as usize));
        }
        for att in topo.nis() {
            let routes: HashMap<_, _> = tables
                .lut_for(att.ni)
                .map(|(dst, r)| (dst, r.clone()))
                .collect();
            match att.kind {
                NiKind::Initiator => {
                    initiator_index.insert(att.ni, initiators.len());
                    initiators.push(InitiatorNi::new(
                        att.ni,
                        ni_cfg,
                        routes,
                        spec.address_map.clone(),
                    ));
                }
                NiKind::Target => {
                    target_index.insert(att.ni, targets.len());
                    targets.push(TargetNi::new(att.ni, ni_cfg, routes, SlaveMemory::new(1)));
                }
            }
        }

        // Channels: one per directed topology link, two per NI
        // attachment, appended to the SoA arrays in dense-id order.
        // The per-link RNG stream numbering (streams from 1, in push
        // order) is part of the determinism contract and unchanged.
        let mut chan = Channels::default();
        let mut stream = 1u64;
        let mut mkchannel = |chan: &mut Channels, producer, consumer, stages: u32| {
            let cfg = LinkConfig::new(stages).with_error_rate(spec.link_error_rate);
            chan.push(
                Link::with_faults(cfg, master_rng.child(stream), link_plan),
                producer,
                consumer,
            );
            stream += 1;
        };
        for l in topo.links() {
            mkchannel(
                &mut chan,
                Endpoint::SwitchPort {
                    switch: l.from.0,
                    port: l.from_port.0 as usize,
                },
                Endpoint::SwitchPort {
                    switch: l.to.0,
                    port: l.to_port.0 as usize,
                },
                l.pipeline_stages,
            );
        }
        for att in topo.nis() {
            let ni_ep = match att.kind {
                NiKind::Initiator => Endpoint::Initiator(initiator_index[&att.ni]),
                NiKind::Target => Endpoint::Target(target_index[&att.ni]),
            };
            let sw_ep = Endpoint::SwitchPort {
                switch: att.switch.0,
                port: att.port.0 as usize,
            };
            mkchannel(&mut chan, ni_ep, sw_ep, 1);
            mkchannel(&mut chan, sw_ep, ni_ep, 1);
        }

        let mut initiator_chan = vec![usize::MAX; initiators.len()];
        let mut target_chan = vec![usize::MAX; targets.len()];
        let mut sw_out_chan: Vec<Vec<usize>> = switches
            .iter()
            .map(|sw| vec![usize::MAX; sw.config().outputs])
            .collect();
        for (i, &producer) in chan.producer.iter().enumerate() {
            match producer {
                Endpoint::Initiator(idx) => initiator_chan[idx] = i,
                Endpoint::Target(idx) => target_chan[idx] = i,
                Endpoint::SwitchPort { switch, port } => sw_out_chan[switch][port] = i,
            }
        }
        let sched = Scheduler::new(chan.len(), switches.len(), initiators.len(), targets.len());
        Ok(Noc {
            switches,
            initiators,
            targets,
            chan,
            sw_out_chan,
            initiator_index,
            target_index,
            now: Cycle::ZERO,
            name: spec.name.clone(),
            trace: None,
            telemetry: None,
            stall_faults: faults.stall_rate > 0.0,
            faults,
            // Stream 0 is never handed to a link (their streams start at
            // 1), so stall injection never disturbs link error draws.
            fault_rng: master_rng.child(0),
            monitor: None,
            attribution: None,
            initiator_chan,
            target_chan,
            sched,
            health: KernelHealth::new(),
            profile: None,
        })
    }

    /// Enables waveform capture: every channel's flit-valid line and the
    /// low byte of the travelling packet id are recorded from now on.
    /// Retrieve the dump with [`vcd`](Self::vcd).
    pub fn enable_trace(&mut self) {
        let vcd = VcdWriter::new(self.name.clone());
        self.install_trace(vcd);
    }

    /// Enables waveform capture streamed incrementally to `writer`
    /// (e.g. a file), so long runs never hold the whole VCD body in
    /// memory. [`vcd`](Self::vcd) returns `None` for a streamed trace;
    /// call [`flush_trace`](Self::flush_trace) when done.
    pub fn enable_trace_to(&mut self, writer: Box<dyn std::io::Write + Send>) {
        let vcd = VcdWriter::stream(self.name.clone(), writer);
        self.install_trace(vcd);
    }

    fn install_trace(&mut self, mut vcd: VcdWriter) {
        let mut valid = Vec::with_capacity(self.chan.len());
        let mut packet = Vec::with_capacity(self.chan.len());
        for i in 0..self.chan.len() {
            valid.push(vcd.declare(format!("ch{i}_valid"), 1));
            packet.push(vcd.declare(format!("ch{i}_pkt"), 8));
        }
        self.trace = Some(TraceState { vcd, valid, packet });
    }

    /// The captured VCD document, if tracing is enabled and buffered
    /// (`None` when the trace streams to an external sink).
    pub fn vcd(&self) -> Option<String> {
        self.trace
            .as_ref()
            .filter(|t| !t.vcd.is_streaming())
            .map(|t| t.vcd.finish())
    }

    /// Flushes a streamed trace sink and surfaces any latched write
    /// error. No-op without a trace or for a buffered one.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error the sink reported.
    pub fn flush_trace(&mut self) -> std::io::Result<()> {
        match &mut self.trace {
            Some(t) => t.vcd.flush(),
            None => Ok(()),
        }
    }

    /// Design name from the specification.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Submits an OCP request at an initiator NI.
    ///
    /// # Errors
    ///
    /// * [`XpipesError::UnknownNi`] / [`XpipesError::WrongNiKind`] for bad
    ///   NI ids.
    /// * Address-decode and header errors from the NI.
    pub fn submit(&mut self, ni: NiId, req: Request) -> Result<(), XpipesError> {
        let idx = *self
            .initiator_index
            .get(&ni)
            .ok_or_else(|| self.classify_unknown(ni))?;
        // Incremental schedule update: a submit touches exactly one NI
        // and its producer channel, so the schedule stays valid without
        // a full rebuild (important — injectors submit mid-run every few
        // cycles).
        let result = self.initiators[idx].submit(req, self.now);
        if result.is_ok() && self.sched.valid {
            note_blocker(
                &mut self.sched.idle_blockers,
                &mut self.sched.blocking_ini[idx],
                !self.initiators[idx].is_idle(),
            );
            self.sched.chan_sched.insert(self.initiator_chan[idx]);
            if self.initiators[idx].has_backlog() {
                self.sched.ini_pending.insert(idx);
            }
        }
        result
    }

    /// Collects a completed response at an initiator NI.
    ///
    /// # Errors
    ///
    /// NI-identity errors as for [`submit`](Self::submit).
    pub fn take_response(&mut self, ni: NiId) -> Result<Option<Response>, XpipesError> {
        let idx = *self
            .initiator_index
            .get(&ni)
            .ok_or_else(|| self.classify_unknown(ni))?;
        Ok(self.initiators[idx].take_response())
    }

    fn classify_unknown(&self, ni: NiId) -> XpipesError {
        if self.target_index.contains_key(&ni) {
            XpipesError::WrongNiKind(ni)
        } else {
            XpipesError::UnknownNi(ni)
        }
    }

    /// The slave memory attached to a target NI.
    ///
    /// # Errors
    ///
    /// NI-identity errors as for [`submit`](Self::submit).
    pub fn memory(&self, ni: NiId) -> Result<&SlaveMemory, XpipesError> {
        let idx = *self
            .target_index
            .get(&ni)
            .ok_or_else(|| self.classify_unknown_t(ni))?;
        Ok(self.targets[idx].memory())
    }

    /// Mutable access to a target NI's slave memory (preloading contents,
    /// changing latency).
    ///
    /// # Errors
    ///
    /// NI-identity errors as for [`submit`](Self::submit).
    pub fn memory_mut(&mut self, ni: NiId) -> Result<&mut SlaveMemory, XpipesError> {
        let idx = *self
            .target_index
            .get(&ni)
            .ok_or_else(|| self.classify_unknown_t(ni))?;
        Ok(self.targets[idx].memory_mut())
    }

    fn classify_unknown_t(&self, ni: NiId) -> XpipesError {
        if self.initiator_index.contains_key(&ni) {
            XpipesError::WrongNiKind(ni)
        } else {
            XpipesError::UnknownNi(ni)
        }
    }

    /// Raises a sideband interrupt from a target NI toward an initiator
    /// NI (the paper's interrupt-forwarding support).
    ///
    /// # Errors
    ///
    /// NI-identity errors for either endpoint.
    pub fn raise_interrupt(&mut self, target: NiId, initiator: NiId) -> Result<(), XpipesError> {
        if !self.initiator_index.contains_key(&initiator) {
            return Err(self.classify_unknown(initiator));
        }
        let idx = *self
            .target_index
            .get(&target)
            .ok_or_else(|| self.classify_unknown_t(target))?;
        // Before the push: whether the target's latency queue already
        // holds work (and therefore already has a live wheel wake).
        let had_sched = self.targets[idx].next_response_at();
        let result = self.targets[idx].raise_interrupt(initiator, self.now);
        if result.is_ok() && self.sched.valid {
            note_blocker(
                &mut self.sched.idle_blockers,
                &mut self.sched.blocking_tgt[idx],
                !self.targets[idx].is_idle(),
            );
            if had_sched.is_none() {
                let at = self.targets[idx].next_response_at().expect("just queued");
                self.sched.tgt_wake.schedule(at.as_u64(), idx);
            }
        }
        result
    }

    /// Pending sideband interrupts at an initiator NI.
    ///
    /// # Errors
    ///
    /// NI-identity errors as for [`submit`](Self::submit).
    pub fn pending_interrupts(&self, ni: NiId) -> Result<u64, XpipesError> {
        let idx = *self
            .initiator_index
            .get(&ni)
            .ok_or_else(|| self.classify_unknown(ni))?;
        Ok(self.initiators[idx].pending_interrupts())
    }

    /// Consumes one pending interrupt at an initiator NI.
    ///
    /// # Errors
    ///
    /// NI-identity errors as for [`submit`](Self::submit).
    pub fn take_interrupt(&mut self, ni: NiId) -> Result<bool, XpipesError> {
        let idx = *self
            .initiator_index
            .get(&ni)
            .ok_or_else(|| self.classify_unknown(ni))?;
        Ok(self.initiators[idx].take_interrupt())
    }

    /// Forward-flit traversal counts of the switch-to-switch links, keyed
    /// by (source switch, output port). Lets callers compare measured
    /// utilization against analytical link-load predictions.
    pub fn link_traversals(&self) -> Vec<(SwitchId, u8, u64)> {
        (0..self.chan.len())
            .filter_map(|i| match (self.chan.producer[i], self.chan.consumer[i]) {
                (Endpoint::SwitchPort { switch, port }, Endpoint::SwitchPort { .. }) => {
                    Some((SwitchId(switch), port as u8, self.chan.link[i].traversals()))
                }
                _ => None,
            })
            .collect()
    }

    /// Statistics of one initiator NI.
    pub fn initiator_stats(&self, ni: NiId) -> Option<&NiStats> {
        self.initiator_index
            .get(&ni)
            .map(|&i| self.initiators[i].stats())
    }

    /// Statistics of one switch (dense topology index order).
    pub fn switch_stats(&self, switch: SwitchId) -> Option<SwitchStats> {
        self.switches.get(switch.0).map(Switch::stats)
    }

    fn endpoint_label(&self, ep: Endpoint) -> String {
        match ep {
            Endpoint::SwitchPort { switch, port } => format!("sw{switch}.p{port}"),
            Endpoint::Initiator(idx) => format!("ini{}", self.initiators[idx].id().0),
            Endpoint::Target(idx) => format!("tgt{}", self.targets[idx].id().0),
        }
    }

    fn producer_tx(&self, ep: Endpoint) -> &LinkTx {
        match ep {
            Endpoint::SwitchPort { switch, port } => self.switches[switch].link_tx(port),
            Endpoint::Initiator(idx) => self.initiators[idx].link_tx(),
            Endpoint::Target(idx) => self.targets[idx].link_tx(),
        }
    }

    fn consumer_rx(&self, ep: Endpoint) -> &LinkRx {
        match ep {
            Endpoint::SwitchPort { switch, port } => self.switches[switch].link_rx(port),
            Endpoint::Initiator(idx) => self.initiators[idx].link_rx(),
            Endpoint::Target(idx) => self.targets[idx].link_rx(),
        }
    }

    /// Attaches a protocol monitor: from now on every channel is watched
    /// for in-order exactly-once delivery, sequence aliasing, liveness
    /// and flit conservation. Enable before injecting traffic — the
    /// monitor assumes it sees every transmission from cycle zero.
    pub fn enable_monitor(&mut self, config: MonitorConfig) {
        let mut monitor = ProtocolMonitor::new(config);
        for i in 0..self.chan.len() {
            let label = format!(
                "{}->{}",
                self.endpoint_label(self.chan.producer[i]),
                self.endpoint_label(self.chan.consumer[i])
            );
            monitor.add_channel(label);
        }
        self.monitor = Some(monitor);
    }

    /// Violations recorded so far (empty when no monitor is attached).
    pub fn monitor_violations(&self) -> &[InvariantViolation] {
        self.monitor.as_ref().map(|m| m.violations()).unwrap_or(&[])
    }

    /// Runs the monitor's end-of-run conservation check (call after the
    /// network has drained).
    pub fn finish_monitor(&mut self) {
        let now = self.now.as_u64();
        if let Some(m) = &mut self.monitor {
            m.finish(now);
        }
    }

    /// Attaches the per-packet latency attribution ledger
    /// (`xpipes_sim::attribution`): every delivered packet's end-to-end
    /// latency is decomposed into named phases with an exact conservation
    /// invariant, aggregated into per-flow histograms with worst-packet
    /// exemplars. Enable before injecting traffic — packets already in
    /// flight cannot be attributed.
    ///
    /// Attribution composes with the activity fast path and never changes
    /// simulated behaviour, RNG streams, or traces.
    pub fn enable_attribution(&mut self) {
        let mut ni_labels = BTreeMap::new();
        for ni in &self.initiators {
            ni_labels.insert(ni.id().0, format!("ini{}", ni.id().0));
        }
        for ni in &self.targets {
            ni_labels.insert(ni.id().0, format!("tgt{}", ni.id().0));
        }
        let channels = (0..self.chan.len())
            .map(|i| AttrChannel {
                label: self.channel_label(i).expect("in range"),
                stages: self.chan.link[i].stages() as u64,
                consumer: match self.chan.consumer[i] {
                    Endpoint::SwitchPort { switch, .. } => AttrConsumer::Switch {
                        extra: self.switches[switch].extra_stages() as u64,
                    },
                    Endpoint::Initiator(idx) => AttrConsumer::Ni {
                        id: self.initiators[idx].id().0,
                    },
                    Endpoint::Target(idx) => AttrConsumer::Ni {
                        id: self.targets[idx].id().0,
                    },
                },
                producer_is_ni: !matches!(self.chan.producer[i], Endpoint::SwitchPort { .. }),
            })
            .collect();
        // The (switch, port) → produced-channel map is maintained by
        // assembly for the scheduler; the attribution engine shares it.
        let grant_channel = self.sw_out_chan.clone();
        for sw in &mut self.switches {
            sw.set_record_grants(true);
        }
        self.attribution = Some(Box::new(AttributionEngine::new(
            channels,
            ni_labels,
            grant_channel,
        )));
    }

    /// The attribution engine, when enabled.
    pub fn attribution(&self) -> Option<&AttributionEngine> {
        self.attribution.as_deref()
    }

    /// The full attribution report (deterministic JSON), when enabled.
    pub fn attribution_report(&self) -> Option<Json> {
        self.attribution.as_deref().map(AttributionEngine::report)
    }

    /// The compact attribution digest for campaign reports, when enabled.
    pub fn attribution_summary(&self) -> Option<AttributionSummary> {
        self.attribution.as_deref().map(AttributionEngine::summary)
    }

    /// Forces output `port` of switch `switch` to stall for `cycles`
    /// cycles, modelling persistent backpressure on one link.
    /// Deterministic (no RNG involved) — the injected-regression hook for
    /// attribution diff tests.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range switch or port.
    pub fn stall_switch_output(&mut self, switch: usize, port: usize, cycles: u64) {
        self.sched.valid = false;
        self.switches[switch].stall_output(port, cycles);
    }

    /// Human-readable label of channel `i` (`producer->consumer`), or
    /// `None` for an out-of-range index.
    pub fn channel_label(&self, i: usize) -> Option<String> {
        (i < self.chan.len()).then(|| {
            format!(
                "{}->{}",
                self.endpoint_label(self.chan.producer[i]),
                self.endpoint_label(self.chan.consumer[i])
            )
        })
    }

    /// Labels of every channel, in dense channel order.
    pub fn channel_labels(&self) -> Vec<String> {
        (0..self.chan.len())
            .map(|i| self.channel_label(i).expect("in range"))
            .collect()
    }

    /// Attaches the telemetry layer: a per-component metric registry
    /// sampled every [`TelemetryConfig::sample_interval`] cycles, plus
    /// the optional congestion timeline and flight recorder.
    ///
    /// Telemetry composes with the activity fast path (see
    /// [`TelemetryConfig`]); it never changes simulated behaviour.
    pub fn enable_telemetry(&mut self, config: TelemetryConfig) {
        assert!(
            config.sample_interval > 0,
            "sample interval must be positive"
        );
        let mut registry = MetricsRegistry::new();
        let mut sw_metrics = Vec::with_capacity(self.switches.len());
        for s in 0..self.switches.len() {
            let c = registry.add_component(format!("sw{s}"));
            sw_metrics.push(SwitchMetrics {
                flits: registry.counter(c, "flits_forwarded"),
                grants: registry.counter(c, "arb_grants"),
                denials: registry.counter(c, "arb_denials"),
                retx: registry.counter(c, "retransmissions"),
                timeouts: registry.counter(c, "ack_timeouts"),
                queue: registry.gauge(c, "queue_depth"),
            });
        }
        let link_labels = self.channel_labels();
        let mut ch_metrics = Vec::with_capacity(self.chan.len());
        for label in &link_labels {
            let c = registry.add_component(format!("link:{label}"));
            ch_metrics.push(ChannelMetrics {
                traversals: registry.counter(c, "flit_traversals"),
                corrupted: registry.counter(c, "flits_corrupted"),
                retx: registry.counter(c, "retransmissions"),
                acks: registry.counter(c, "acks"),
                nacks: registry.counter(c, "nacks"),
            });
        }
        let ni_component = |registry: &mut MetricsRegistry, name: String| {
            let c = registry.add_component(name);
            NiMetrics {
                packets: registry.counter(c, "packets_sent"),
                flits: registry.counter(c, "flits_sent"),
                stalls: registry.counter(c, "packetization_stalls"),
            }
        };
        let ini_metrics = self
            .initiators
            .iter()
            .map(|ni| ni_component(&mut registry, format!("ini{}", ni.id().0)))
            .collect();
        let tgt_metrics = self
            .targets
            .iter()
            .map(|ni| ni_component(&mut registry, format!("tgt{}", ni.id().0)))
            .collect();
        let switch_labels: Vec<String> =
            (0..self.switches.len()).map(|s| format!("sw{s}")).collect();
        let timeline = config
            .timeline
            .then(|| CongestionTimeline::new(config.sample_interval, link_labels, switch_labels));
        let flight = (config.flight_recorder_depth > 0)
            .then(|| FlightRecorder::new(config.flight_recorder_depth, self.chan.len()));
        self.telemetry = Some(Box::new(TelemetryState {
            config,
            registry,
            sw_metrics,
            ch_metrics,
            ini_metrics,
            tgt_metrics,
            timeline,
            last_traversals: vec![0; self.chan.len()],
            window_start: self.now.as_u64(),
            flight,
        }));
    }

    /// The metric registry, when telemetry is enabled.
    pub fn telemetry_registry(&self) -> Option<&MetricsRegistry> {
        self.telemetry.as_ref().map(|t| &t.registry)
    }

    /// The congestion timeline, when telemetry collects one.
    pub fn timeline(&self) -> Option<&CongestionTimeline> {
        self.telemetry.as_ref().and_then(|t| t.timeline.as_ref())
    }

    /// Rendered timeline JSON, when telemetry collects one.
    pub fn timeline_json(&self) -> Option<String> {
        self.timeline().map(CongestionTimeline::render)
    }

    /// The flight recorder, when telemetry runs one.
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.telemetry.as_ref().and_then(|t| t.flight.as_ref())
    }

    /// Rendered flight-recorder dump: the frozen last-K events when an
    /// invariant tripped, otherwise the live ring. Empty without a
    /// recorder.
    pub fn flight_dump_rendered(&self) -> Vec<String> {
        let Some(fr) = self.flight_recorder() else {
            return Vec::new();
        };
        let labels = self.channel_labels();
        fr.snapshot()
            .iter()
            .map(|ev| {
                ev.render(
                    labels
                        .get(ev.channel as usize)
                        .map(String::as_str)
                        .unwrap_or("?"),
                )
            })
            .collect()
    }

    /// Chrome/Perfetto `trace_event` JSON of the flight recorder's
    /// flit lifetimes (inject→route→deliver spans), when a recorder
    /// runs. This export is a pure function of the simulated events, so
    /// it is byte-stable across a checkpoint/restore boundary.
    pub fn perfetto_json(&self) -> Option<String> {
        self.perfetto(false)
    }

    /// [`perfetto_json`](Self::perfetto_json) plus the kernel-health
    /// counter tracks (pid 2), so the dispatch mix lines up with flit
    /// and attribution spans. Health counters describe *this process's*
    /// engine run and are not checkpointed, so unlike the plain export
    /// this variant is **not** byte-stable across a restore — keep it
    /// out of byte-compared artifact sets.
    pub fn perfetto_json_with_health(&self) -> Option<String> {
        self.perfetto(true)
    }

    fn perfetto(&self, health: bool) -> Option<String> {
        self.flight_recorder().map(|fr| {
            let mut extra = self
                .attribution
                .as_deref()
                .map(AttributionEngine::perfetto_events)
                .unwrap_or_default();
            if health {
                extra.extend(self.health.perfetto_counter_events());
            }
            perfetto_trace_with(&fr.snapshot(), &self.channel_labels(), extra).render()
        })
    }

    /// Samples component counters into the registry and timeline. The
    /// take-put dance moves the boxed state out of `self` so the scan
    /// can use `&self` accessors freely.
    fn sample_telemetry(&mut self, cycle: u64) {
        let Some(mut t) = self.telemetry.take() else {
            return;
        };
        let mut queue_w: Vec<u32> = Vec::new();
        for (s, sw) in self.switches.iter().enumerate() {
            let st = sw.stats();
            let (_, qmax) = sw.queue_occupancy();
            let ids = &t.sw_metrics[s];
            // A crossbar traversal is a granted arbitration; contention
            // stalls are the denials.
            t.registry.set(ids.flits, st.flits_routed);
            t.registry.set(ids.grants, st.flits_routed);
            t.registry.set(ids.denials, st.contention_stalls);
            t.registry.set(ids.retx, st.retransmissions);
            t.registry.set(ids.timeouts, st.ack_timeouts);
            t.registry.sample(ids.queue, qmax as u64);
            if t.timeline.is_some() {
                queue_w.push(qmax as u32);
            }
        }
        let mut link_w: Vec<u32> = Vec::new();
        for i in 0..self.chan.len() {
            let ids = &t.ch_metrics[i];
            let trav = self.chan.link[i].traversals();
            t.registry.set(ids.traversals, trav);
            t.registry.set(ids.corrupted, self.chan.link[i].corrupted());
            t.registry.set(
                ids.retx,
                self.producer_tx(self.chan.producer[i]).retransmissions(),
            );
            let rx = self.consumer_rx(self.chan.consumer[i]);
            t.registry.set(ids.acks, rx.accepted());
            t.registry.set(ids.nacks, rx.rejected());
            if t.timeline.is_some() {
                link_w.push(trav.saturating_sub(t.last_traversals[i]) as u32);
                t.last_traversals[i] = trav;
            }
        }
        for (n, ni) in self.initiators.iter().enumerate() {
            let ids = &t.ini_metrics[n];
            let st = ni.stats();
            t.registry.set(ids.packets, st.packets_sent);
            t.registry.set(ids.flits, st.flits_sent);
            t.registry.set(ids.stalls, ni.packetization_stalls());
        }
        for (n, ni) in self.targets.iter().enumerate() {
            let ids = &t.tgt_metrics[n];
            let st = ni.stats();
            t.registry.set(ids.packets, st.packets_sent);
            t.registry.set(ids.flits, st.flits_sent);
            t.registry.set(ids.stalls, ni.packetization_stalls());
        }
        if let Some(tl) = &mut t.timeline {
            tl.push(t.window_start, link_w, queue_w);
            t.window_start = cycle + 1;
        }
        t.registry.note_epoch();
        self.telemetry = Some(t);
        // Kernel-health counters snapshot on the same epoch cadence so
        // the Perfetto counter tracks line up with congestion windows.
        self.health.sample(cycle);
    }

    /// Forces a final sample covering any cycles since the last epoch
    /// boundary (the trailing partial timeline window). Call after a
    /// run, before exporting telemetry.
    pub fn flush_telemetry(&mut self) {
        let now = self.now.as_u64();
        let Some(t) = &self.telemetry else { return };
        if now > t.window_start {
            self.sample_telemetry(now - 1);
        }
    }

    /// Per-run telemetry digest: total and per-link retransmissions
    /// plus the deepest output queue any switch reached. A pure
    /// function of end-of-run component counters — deterministic and
    /// available with or without [`enable_telemetry`](Self::enable_telemetry).
    pub fn telemetry_summary(&self) -> TelemetrySummary {
        let mut links = Vec::new();
        let mut total = 0u64;
        for i in 0..self.chan.len() {
            let r = self.producer_tx(self.chan.producer[i]).retransmissions();
            total += r;
            if r > 0 {
                links.push((self.channel_label(i).expect("in range"), r));
            }
        }
        let mut peak = 0u64;
        let mut peak_switch = String::new();
        for (s, sw) in self.switches.iter().enumerate() {
            let d = sw.stats().max_queue_depth as u64;
            if peak_switch.is_empty() || d > peak {
                peak = d;
                peak_switch = format!("sw{s}");
            }
        }
        TelemetrySummary {
            total_retransmissions: total,
            link_retransmissions: links,
            peak_queue_depth: peak,
            peak_queue_switch: peak_switch,
        }
    }

    /// The per-run kernel dispatch counters: event vs fallback step mix
    /// with a fallback-reason histogram, schedule occupancy, wheel
    /// depth/horizon, and time-jump totals. Always collected (plain
    /// counter bumps) and deterministic; introspection only — never
    /// serialized into checkpoints or folded into byte-compared
    /// artifacts.
    pub fn kernel_health(&self) -> &KernelHealth {
        &self.health
    }

    /// Arms the wall-clock kernel phase profiler. Until this is called
    /// the kernel takes no timestamps at all. Profile data is
    /// non-deterministic (wall clock) and must only be emitted in report
    /// sections excluded from byte comparison.
    pub fn enable_profiling(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(Box::new(KernelProfile::new()));
        }
    }

    /// The accumulated phase profile, when profiling is armed.
    pub fn kernel_profile(&self) -> Option<&KernelProfile> {
        self.profile.as_deref()
    }

    /// Arms a flow-control sabotage mode on **every** sender in the
    /// network (switch output ports and NI network ports). Conformance
    /// hook: a sabotaged network must trip the protocol monitor.
    pub fn sabotage_all_senders(&mut self, mode: FlowSabotage) {
        self.sched.valid = false;
        for sw in &mut self.switches {
            for p in 0..sw.config().outputs {
                sw.link_tx_mut(p).sabotage(mode);
            }
        }
        for ni in &mut self.initiators {
            ni.link_tx_mut().sabotage(mode);
        }
        for ni in &mut self.targets {
            ni.link_tx_mut().sabotage(mode);
        }
    }

    /// True when the current step can use the activity fast path: no
    /// observer needs per-channel events (trace, monitor) and no
    /// network-level fault injection runs between phases. Under these
    /// conditions every phase is a pure function of per-channel state, so
    /// provably-inert channels and switches can be skipped without
    /// changing behaviour or any RNG stream.
    fn fast_path(&self) -> bool {
        self.trace.is_none() && self.monitor.is_none() && !self.stall_faults
    }

    /// Rebuilds the event schedule and the cached idle-blocker census
    /// from a full scan of current state. A channel is left unscheduled
    /// only when *every* step phase is a no-op for it: latches and
    /// pending arrivals empty, link pipes empty, and the producer has
    /// nothing to transmit (an open retransmission window counts as work —
    /// it must keep ticking the ACK timeout).
    fn rebuild_schedule(&mut self) {
        let switches = &self.switches;
        let initiators = &self.initiators;
        let targets = &self.targets;
        let chan = &self.chan;
        let now = self.now.as_u64();
        let sched = &mut self.sched;
        sched.chan_sched.clear();
        sched.sw_sched.clear();
        sched.ini_pending.clear();
        sched.tgt_wake.reset(now);
        let mut blockers = 0usize;
        for (s, sw) in switches.iter().enumerate() {
            let (input_act, idle) = sw.activity();
            if input_act {
                sched.sw_sched.insert(s);
            }
            sched.blocking_sw[s] = !idle;
            blockers += usize::from(!idle);
        }
        for (n, ni) in initiators.iter().enumerate() {
            let blocking = !ni.is_idle();
            sched.blocking_ini[n] = blocking;
            blockers += usize::from(blocking);
            if ni.has_backlog() {
                sched.ini_pending.insert(n);
            }
        }
        for (n, ni) in targets.iter().enumerate() {
            let blocking = !ni.is_idle();
            sched.blocking_tgt[n] = blocking;
            blockers += usize::from(blocking);
            if let Some(at) = ni.next_response_at() {
                // `schedule` clamps an already-due head to `now`.
                sched.tgt_wake.schedule(at.as_u64(), n);
            }
        }
        for i in 0..chan.len() {
            let blocking = chan.fwd_latch[i].is_some() || chan.fwd_arrival[i].is_some();
            sched.blocking_chan[i] = blocking;
            blockers += usize::from(blocking);
            let active = chan.fwd_latch[i].is_some()
                || chan.rev_latch[i].is_some()
                || chan.fwd_arrival[i].is_some()
                || chan.rev_arrival[i].is_some()
                || !chan.link[i].is_empty()
                || match chan.producer[i] {
                    Endpoint::SwitchPort { switch, port } => switches[switch].output_pending(port),
                    Endpoint::Initiator(idx) => initiators[idx].link_busy(),
                    Endpoint::Target(idx) => targets[idx].link_busy(),
                };
            if active {
                sched.chan_sched.insert(i);
            }
        }
        sched.idle_blockers = blockers;
        sched.valid = true;
    }

    /// Advances the network one clock cycle.
    ///
    /// Observer-free configurations (no trace, no protocol monitor, no
    /// stall-fault injection) run the event-driven kernel, which visits
    /// only scheduled components; everything else runs the reference
    /// full scan. Both produce bit-identical state, statistics, RNG
    /// streams, and observer output — pinned by
    /// `tests/kernel_equivalence.rs`.
    pub fn step(&mut self) {
        if self.fast_path() {
            if !self.sched.valid {
                self.health.note_rebuild();
                let mark = self.profile.is_some().then(std::time::Instant::now);
                self.rebuild_schedule();
                if let (Some(p), Some(t)) = (self.profile.as_deref_mut(), mark) {
                    p.note(KernelPhase::Scheduling, t.elapsed());
                }
            }
            self.step_event();
        } else {
            self.sched.valid = false;
            self.step_full();
        }
    }

    /// Advances one cycle with the reference kernel (full component
    /// scan), regardless of the fast-path gate. The differential
    /// equivalence harness drives this side-by-side with [`step`](Self::step).
    #[cfg(any(test, feature = "reference-kernel"))]
    pub fn step_reference(&mut self) {
        self.sched.valid = false;
        self.step_full();
    }

    /// The reference step: every channel, switch, and NI is processed
    /// every cycle. The only path that supports per-event observers
    /// (VCD trace, protocol monitor) and stall-fault injection.
    fn step_full(&mut self) {
        // The monitor and attribution engine are moved out for the
        // duration of the step so their `note_*` calls can run between
        // mutable component accesses.
        let mut monitor = self.monitor.take();
        let mut attr = self.attribution.take();
        let cycle = self.now.as_u64();
        // Health: every armed observer that forced this full scan counts
        // in the reason histogram; a direct `step_reference` call with no
        // observer armed is a schedule-invalidated step by definition.
        {
            let mut reasons = [FallbackReason::ScheduleInvalidated; 3];
            let mut n = 0;
            if self.trace.is_some() {
                reasons[n] = FallbackReason::TraceArmed;
                n += 1;
            }
            if monitor.is_some() {
                reasons[n] = FallbackReason::MonitorArmed;
                n += 1;
            }
            if self.stall_faults {
                reasons[n] = FallbackReason::StallFaultsActive;
                n += 1;
            }
            let n = n.max(1);
            self.health.note_fallback_step(&reasons[..n]);
        }
        let mut prof = self.profile.take();
        let mut mark = prof.as_ref().map(|_| std::time::Instant::now());
        // Violation count going in: if it grows this cycle, the flight
        // recorder freezes its ring at the end of the step.
        let viol_before = monitor.as_ref().map_or(0, |m| m.violations().len());

        // Phase 1: links shift.
        for i in 0..self.chan.len() {
            let (fwd, rev) = self.chan.link[i]
                .shift(self.chan.fwd_latch[i].take(), self.chan.rev_latch[i].take());
            self.chan.fwd_arrival[i] = fwd;
            self.chan.rev_arrival[i] = rev;
        }
        prof_mark(&mut prof, &mut mark, KernelPhase::ChannelPass);
        if let Some(trace) = &mut self.trace {
            for (i, arrival) in self.chan.fwd_arrival.iter().enumerate() {
                let (valid, pkt) = match arrival {
                    Some(lf) => (1, lf.flit.meta.packet_id & 0xFF),
                    None => (0, 0),
                };
                trace.vcd.change(self.now, trace.valid[i], valid);
                trace.vcd.change(self.now, trace.packet[i], pkt);
            }
        }
        prof_mark(&mut prof, &mut mark, KernelPhase::ObserverHooks);
        // Fault injection: transient backpressure at switch outputs. The
        // guard keeps fault-free runs off `fault_rng` entirely, so their
        // RNG streams are bit-identical whether or not a plan is armed.
        if self.stall_faults {
            for s in 0..self.switches.len() {
                for p in 0..self.switches[s].config().outputs {
                    if self.fault_rng.chance(self.faults.stall_rate) {
                        self.switches[s].stall_output(p, self.faults.stall_len as u64);
                    }
                }
            }
            prof_mark(&mut prof, &mut mark, KernelPhase::SwitchPass);
        }
        // Phase 2: producers transmit (consume reverse arrivals).
        {
            let chan = &mut self.chan;
            let switches = &mut self.switches;
            let initiators = &mut self.initiators;
            let targets = &mut self.targets;
            let mut flight = self.telemetry.as_mut().and_then(|t| t.flight.as_mut());
            for i in 0..chan.len() {
                phase2_transmit(
                    i,
                    chan,
                    switches,
                    initiators,
                    targets,
                    monitor.as_mut(),
                    attr.as_deref_mut(),
                    flight.as_deref_mut(),
                    cycle,
                );
            }
        }
        prof_mark(&mut prof, &mut mark, KernelPhase::ChannelPass);
        // Phase 3: switch allocation + crossbar.
        for sw in &mut self.switches {
            sw.crossbar();
        }
        // Attribution: drain the crossbar tail grants collected in
        // phase 3.
        if let Some(a) = attr.as_deref_mut() {
            for (s, sw) in self.switches.iter_mut().enumerate() {
                for &(port, pkt) in sw.granted_tails() {
                    a.note_grant(s, port, pkt, cycle);
                }
                sw.clear_granted_tails();
            }
        }
        prof_mark(&mut prof, &mut mark, KernelPhase::SwitchPass);
        // Phase 4: consumers receive (produce reverse replies).
        {
            let chan = &mut self.chan;
            let switches = &mut self.switches;
            let initiators = &mut self.initiators;
            let targets = &mut self.targets;
            let now = self.now;
            let mut flight = self.telemetry.as_mut().and_then(|t| t.flight.as_mut());
            for i in 0..chan.len() {
                phase4_receive(
                    i,
                    chan,
                    switches,
                    initiators,
                    targets,
                    monitor.as_mut(),
                    attr.as_deref_mut(),
                    flight.as_deref_mut(),
                    cycle,
                    now,
                );
            }
        }
        prof_mark(&mut prof, &mut mark, KernelPhase::ChannelPass);
        // Monitor: once-per-cycle endpoint invariants on every channel.
        if let Some(m) = monitor.as_mut() {
            for i in 0..self.chan.len() {
                let tx = self.producer_tx(self.chan.producer[i]);
                let rx = self.consumer_rx(self.chan.consumer[i]);
                m.check_endpoints(i, tx, rx, cycle);
            }
        }
        // Flight recorder: the first tripped invariant freezes the ring,
        // preserving the last-K events around the violation however long
        // the run continues.
        if let Some(m) = &monitor {
            if m.violations().len() > viol_before {
                if let Some(fr) = self.telemetry.as_mut().and_then(|t| t.flight.as_mut()) {
                    fr.freeze(cycle);
                }
            }
        }
        prof_mark(&mut prof, &mut mark, KernelPhase::ObserverHooks);
        // NI housekeeping.
        for ni in &mut self.initiators {
            ni.tick(self.now);
        }
        for ni in &mut self.targets {
            ni.tick(self.now);
        }
        prof_mark(&mut prof, &mut mark, KernelPhase::WheelService);
        self.monitor = monitor;
        self.attribution = attr;
        // Telemetry epoch boundary: scan component counters into the
        // registry (and close a timeline window) once per interval. This
        // is the whole per-cycle cost of the metric layer.
        if let Some(t) = &self.telemetry {
            if (cycle + 1).is_multiple_of(t.config.sample_interval) {
                self.sample_telemetry(cycle);
            }
        }
        prof_mark(&mut prof, &mut mark, KernelPhase::ObserverHooks);
        // A reference step invalidates the event schedule; when the
        // fast-path gate would allow event stepping, rebuild it here so
        // `is_idle` stays O(1) between reference steps.
        if self.fast_path() {
            self.rebuild_schedule();
        } else {
            self.sched.valid = false;
        }
        prof_mark(&mut prof, &mut mark, KernelPhase::Scheduling);
        self.profile = prof;
        self.now = self.now.next();
    }

    /// The event-driven step: walks only scheduled channels/switches and
    /// due NI wakes, maintaining the schedule incrementally. Requires a
    /// valid schedule and an observer-free configuration (the dispatch
    /// in [`step`](Self::step) guarantees both).
    fn step_event(&mut self) {
        debug_assert!(self.sched.valid && self.fast_path());
        let mut attr = self.attribution.take();
        let cycle = self.now.as_u64();

        // Swap this cycle's schedules out against empty scratch sets:
        // next-cycle membership accumulates in `chan_sched`/`sw_sched`
        // while this cycle's membership is walked.
        let chan_cur = std::mem::replace(
            &mut self.sched.chan_sched,
            std::mem::take(&mut self.sched.chan_scratch),
        );
        let sw_cur = std::mem::replace(
            &mut self.sched.sw_sched,
            std::mem::take(&mut self.sched.sw_scratch),
        );
        self.health.note_event_step(
            chan_cur.len() as u64,
            sw_cur.len() as u64,
            self.sched.tgt_wake.len() as u64,
            self.sched.tgt_wake.next_event_cycle(),
        );
        let mut prof = self.profile.take();
        let mut mark = prof.as_ref().map(|_| std::time::Instant::now());

        // Phase 1: links shift. Unscheduled channels hold no latches and
        // an empty pipe — their shift is a no-op and draws no RNG.
        {
            let chan = &mut self.chan;
            for i in chan_cur.iter() {
                let (fwd, rev) =
                    chan.link[i].shift(chan.fwd_latch[i].take(), chan.rev_latch[i].take());
                chan.fwd_arrival[i] = fwd;
                chan.rev_arrival[i] = rev;
            }
        }
        prof_mark(&mut prof, &mut mark, KernelPhase::ChannelPass);
        // Phase 2: producers transmit (consume reverse arrivals). Every
        // endpoint a phase touches lands in a touched set so its blocker
        // bit and activity are re-derived after the ticks.
        {
            let chan = &mut self.chan;
            let switches = &mut self.switches;
            let initiators = &mut self.initiators;
            let targets = &mut self.targets;
            let sched = &mut self.sched;
            let mut flight = self.telemetry.as_mut().and_then(|t| t.flight.as_mut());
            for i in chan_cur.iter() {
                match chan.producer[i] {
                    Endpoint::SwitchPort { switch, .. } => {
                        sched.sw_cand.insert(switch);
                    }
                    Endpoint::Initiator(idx) => {
                        sched.ini_touched.insert(idx);
                    }
                    Endpoint::Target(idx) => {
                        sched.tgt_touched.insert(idx);
                    }
                }
                phase2_transmit(
                    i,
                    chan,
                    switches,
                    initiators,
                    targets,
                    None,
                    attr.as_deref_mut(),
                    flight.as_deref_mut(),
                    cycle,
                );
            }
        }
        prof_mark(&mut prof, &mut mark, KernelPhase::ChannelPass);
        // Phase 3: switch allocation + crossbar for switches whose input
        // side held work. A granted flit lands in an output queue, so
        // the produced channel joins next cycle's schedule.
        for s in sw_cur.iter() {
            self.switches[s].crossbar();
            self.sched.sw_cand.insert(s);
            for p in 0..self.switches[s].config().outputs {
                if self.switches[s].output_pending(p) {
                    let c = self.sw_out_chan[s][p];
                    if c != usize::MAX {
                        self.sched.chan_sched.insert(c);
                    }
                }
            }
        }
        // Attribution: drain the crossbar tail grants. Ascending switch
        // order matches the reference step; switches that did not
        // crossbar this cycle collected no grants.
        if let Some(a) = attr.as_deref_mut() {
            for s in sw_cur.iter() {
                let sw = &mut self.switches[s];
                for &(port, pkt) in sw.granted_tails() {
                    a.note_grant(s, port, pkt, cycle);
                }
                sw.clear_granted_tails();
            }
        }
        prof_mark(&mut prof, &mut mark, KernelPhase::SwitchPass);
        // Phase 4: consumers receive (produce reverse replies). A target
        // whose latency queue goes empty→non-empty gets a wheel wake at
        // its head's ready cycle (head-of-line pop order keeps the
        // head's cycle the exact next pop time).
        {
            let chan = &mut self.chan;
            let switches = &mut self.switches;
            let initiators = &mut self.initiators;
            let targets = &mut self.targets;
            let sched = &mut self.sched;
            let now = self.now;
            let mut flight = self.telemetry.as_mut().and_then(|t| t.flight.as_mut());
            for i in chan_cur.iter() {
                let had_fwd = chan.fwd_arrival[i].is_some();
                let mut tgt_before = None;
                match chan.consumer[i] {
                    Endpoint::SwitchPort { switch, .. } => {
                        // `receive(port, None)` is a strict no-op.
                        if had_fwd {
                            sched.sw_cand.insert(switch);
                        }
                    }
                    Endpoint::Initiator(idx) => {
                        sched.ini_touched.insert(idx);
                    }
                    Endpoint::Target(idx) => {
                        sched.tgt_touched.insert(idx);
                        tgt_before = targets[idx].next_response_at();
                    }
                }
                phase4_receive(
                    i,
                    chan,
                    switches,
                    initiators,
                    targets,
                    None,
                    attr.as_deref_mut(),
                    flight.as_deref_mut(),
                    cycle,
                    now,
                );
                if let Endpoint::Target(idx) = chan.consumer[i] {
                    if tgt_before.is_none() {
                        if let Some(at) = targets[idx].next_response_at() {
                            sched.tgt_wake.schedule(at.as_u64(), idx);
                        }
                    }
                }
            }
        }
        prof_mark(&mut prof, &mut mark, KernelPhase::ChannelPass);
        // NI housekeeping: only initiators with a submit backlog and
        // targets with a due response can make progress; every other
        // tick is a provable no-op.
        {
            let mut ini_buf = std::mem::take(&mut self.sched.ini_buf);
            ini_buf.clear();
            ini_buf.extend(self.sched.ini_pending.iter());
            for &idx in &ini_buf {
                self.initiators[idx].tick(self.now);
                self.sched.ini_touched.insert(idx);
                if !self.initiators[idx].has_backlog() {
                    self.sched.ini_pending.remove(idx);
                }
                if self.initiators[idx].link_busy() {
                    self.sched.chan_sched.insert(self.initiator_chan[idx]);
                }
            }
            self.sched.ini_buf = ini_buf;

            let mut wake_buf = std::mem::take(&mut self.sched.wake_buf);
            wake_buf.clear();
            self.sched.tgt_wake.advance_to(cycle, &mut wake_buf);
            for &(_, idx) in &wake_buf {
                self.targets[idx].tick(self.now);
                self.sched.tgt_touched.insert(idx);
                if let Some(at) = self.targets[idx].next_response_at() {
                    debug_assert!(at.as_u64() > cycle, "tick left a due response queued");
                    self.sched.tgt_wake.schedule(at.as_u64(), idx);
                }
                if self.targets[idx].link_busy() {
                    self.sched.chan_sched.insert(self.target_chan[idx]);
                }
            }
            self.sched.wake_buf = wake_buf;
        }
        prof_mark(&mut prof, &mut mark, KernelPhase::WheelService);
        // Re-derive activity and blocker bits for everything this step
        // touched. Unscheduled components were provably untouched, so
        // their cached bits still hold.
        {
            let chan = &self.chan;
            let switches = &self.switches;
            let initiators = &self.initiators;
            let targets = &self.targets;
            let sched = &mut self.sched;
            for i in chan_cur.iter() {
                let blocking = chan.fwd_latch[i].is_some() || chan.fwd_arrival[i].is_some();
                note_blocker(
                    &mut sched.idle_blockers,
                    &mut sched.blocking_chan[i],
                    blocking,
                );
                let active = chan.fwd_latch[i].is_some()
                    || chan.rev_latch[i].is_some()
                    || chan.fwd_arrival[i].is_some()
                    || chan.rev_arrival[i].is_some()
                    || !chan.link[i].is_empty()
                    || match chan.producer[i] {
                        Endpoint::SwitchPort { switch, port } => {
                            switches[switch].output_pending(port)
                        }
                        Endpoint::Initiator(idx) => initiators[idx].link_busy(),
                        Endpoint::Target(idx) => targets[idx].link_busy(),
                    };
                if active {
                    sched.chan_sched.insert(i);
                }
            }
            let mut sw_buf = std::mem::take(&mut sched.sw_buf);
            sched.sw_cand.drain_into(&mut sw_buf);
            for &s in &sw_buf {
                let (input_act, idle) = switches[s].activity();
                if input_act {
                    sched.sw_sched.insert(s);
                }
                note_blocker(&mut sched.idle_blockers, &mut sched.blocking_sw[s], !idle);
            }
            sched.sw_buf = sw_buf;
            let mut ni_buf = std::mem::take(&mut sched.ni_buf);
            sched.ini_touched.drain_into(&mut ni_buf);
            for &n in &ni_buf {
                note_blocker(
                    &mut sched.idle_blockers,
                    &mut sched.blocking_ini[n],
                    !initiators[n].is_idle(),
                );
            }
            sched.tgt_touched.drain_into(&mut ni_buf);
            for &n in &ni_buf {
                note_blocker(
                    &mut sched.idle_blockers,
                    &mut sched.blocking_tgt[n],
                    !targets[n].is_idle(),
                );
            }
            sched.ni_buf = ni_buf;
        }
        prof_mark(&mut prof, &mut mark, KernelPhase::Scheduling);
        self.attribution = attr;
        // Telemetry epoch boundary: same cadence as the reference step.
        if let Some(t) = &self.telemetry {
            if (cycle + 1).is_multiple_of(t.config.sample_interval) {
                self.sample_telemetry(cycle);
            }
        }
        prof_mark(&mut prof, &mut mark, KernelPhase::ObserverHooks);
        self.profile = prof;
        // Return the walked (now cleared) sets to the scratch slots.
        let mut chan_cur = chan_cur;
        let mut sw_cur = sw_cur;
        chan_cur.clear();
        sw_cur.clear();
        self.sched.chan_scratch = chan_cur;
        self.sched.sw_scratch = sw_cur;
        self.now = self.now.next();
    }

    /// Cycles that can be skipped outright, bounded by `limit`: when the
    /// schedule is valid and empty (no channel, switch, or initiator has
    /// work), nothing mutates until the next target wake — stepping
    /// through the gap would be pure no-ops. Only the observers behind
    /// the fast-path gate disable jumping; armed telemetry jumps too,
    /// with [`jump_idle_gap`](Self::jump_idle_gap) synthesizing its
    /// epoch samples across the gap.
    fn idle_gap(&self, limit: u64) -> Option<u64> {
        if limit == 0 || !self.sched.valid || !self.fast_path() {
            return None;
        }
        let s = &self.sched;
        if !s.chan_sched.is_empty() || !s.sw_sched.is_empty() || !s.ini_pending.is_empty() {
            return None;
        }
        let gap = match s.tgt_wake.next_event_cycle() {
            Some(at) => at.saturating_sub(self.now.as_u64()).min(limit),
            // No wake anywhere: the network is drained (or deadlocked on
            // external input) and every remaining cycle is a no-op.
            None => limit,
        };
        (gap > 0).then_some(gap)
    }

    /// Advances the clock across a provably-idle gap of `skip` cycles
    /// (from [`idle_gap`](Self::idle_gap)). With telemetry armed, every
    /// epoch boundary inside the gap gets a synthesized sample: no
    /// component counter changes during an idle gap, so each sample is
    /// byte-identical to the one cycle-by-cycle stepping would have
    /// taken — pinned by the kernel-equivalence matrix.
    fn jump_idle_gap(&mut self, skip: u64) {
        let now = self.now.as_u64();
        let interval = self.telemetry.as_ref().map(|t| t.config.sample_interval);
        if let Some(interval) = interval.filter(|&i| i > 0) {
            // First cycle c >= now with (c + 1) a multiple of the
            // sampling interval, then every interval-th cycle before the
            // jump target.
            let mut boundary = (now + 1).next_multiple_of(interval) - 1;
            while boundary < now + skip {
                self.sample_telemetry(boundary);
                self.health.note_synthetic_sample();
                boundary += interval;
            }
        }
        self.health.note_jump(skip);
        self.now = Cycle::new(now + skip);
    }

    /// Runs `cycles` clock cycles. Whole idle gaps — runs of cycles in
    /// which provably nothing happens — are skipped by advancing the
    /// clock directly to the next scheduled event.
    pub fn run(&mut self, cycles: u64) {
        let mut remaining = cycles;
        while remaining > 0 {
            if let Some(skip) = self.idle_gap(remaining) {
                self.jump_idle_gap(skip);
                remaining -= skip;
                continue;
            }
            self.step();
            remaining -= 1;
        }
    }

    /// True when no flit is buffered or in flight anywhere. While the
    /// schedule is valid (every event step maintains it) this is an O(1)
    /// counter check instead of a full network scan.
    pub fn is_idle(&self) -> bool {
        if self.sched.valid {
            let idle = self.sched.idle_blockers == 0;
            debug_assert_eq!(idle, self.full_idle_scan(), "idle cache out of sync");
            return idle;
        }
        self.full_idle_scan()
    }

    /// `(scheduled, total)` channel counts from the live schedule, or
    /// `None` while it is stale (reference steps, fresh networks).
    /// Introspection for perf analysis and tests.
    pub fn active_channels(&self) -> Option<(usize, usize)> {
        self.sched
            .valid
            .then(|| (self.sched.chan_sched.len(), self.chan.len()))
    }

    fn full_idle_scan(&self) -> bool {
        self.initiators.iter().all(InitiatorNi::is_idle)
            && self.targets.iter().all(TargetNi::is_idle)
            && self.switches.iter().all(Switch::is_idle)
            && self.chan.fwd_latch.iter().all(Option::is_none)
            && self.chan.fwd_arrival.iter().all(Option::is_none)
    }

    /// Runs until the network drains or `max_cycles` elapse; returns true
    /// if it drained. Idle gaps are skipped as in [`run`](Self::run).
    pub fn run_until_idle(&mut self, max_cycles: u64) -> bool {
        let mut remaining = max_cycles;
        while remaining > 0 {
            if self.is_idle() {
                return true;
            }
            if let Some(skip) = self.idle_gap(remaining) {
                self.jump_idle_gap(skip);
                remaining -= skip;
                continue;
            }
            self.step();
            remaining -= 1;
        }
        self.is_idle()
    }

    /// Aggregate statistics over all components.
    pub fn stats(&self) -> NocStats {
        let mut s = NocStats {
            cycles: self.now.as_u64(),
            ..NocStats::default()
        };
        for sw in &self.switches {
            let st = sw.stats();
            s.flits_routed += st.flits_routed;
            s.retransmissions += st.retransmissions;
            s.ack_timeouts += st.ack_timeouts;
            s.stall_cycles += st.stalled_cycles;
        }
        for ni in &self.initiators {
            s.retransmissions += ni.link_tx().retransmissions();
            s.ack_timeouts += ni.link_tx().timeouts();
            let st = ni.stats();
            s.packets_sent += st.packets_sent;
            s.packets_delivered += st.packets_received;
            s.transaction_latency.merge(&st.latency);
            s.latency_histogram.merge(&st.latency_hist);
        }
        for ni in &self.targets {
            s.retransmissions += ni.link_tx().retransmissions();
            s.ack_timeouts += ni.link_tx().timeouts();
            let st = ni.stats();
            s.packets_sent += st.packets_sent;
            s.packets_delivered += st.packets_received;
            s.request_latency.merge(&st.latency);
        }
        for link in &self.chan.link {
            s.flits_corrupted += link.corrupted();
            s.acks_dropped += link.rev_dropped();
            s.acks_corrupted += link.rev_corrupted();
        }
        s
    }
}

impl Snapshot for TelemetryState {
    /// Mutable telemetry state only: the registry values/epochs, the
    /// per-channel traversal baselines, the open window start, and the
    /// timeline/flight sub-observers. Metric handle maps and the config
    /// are structural and rebuilt by [`Noc::enable_telemetry`]. The
    /// sub-observers ride in skippable blobs so a snapshot taken with a
    /// different timeline/flight setting still restores the rest.
    fn save_state(&self, w: &mut SnapshotWriter) {
        self.registry.save_state(w);
        w.len(self.last_traversals.len());
        for &t in &self.last_traversals {
            w.u64(t);
        }
        w.u64(self.window_start);
        save_section(w, self.timeline.as_ref());
        save_section(w, self.flight.as_ref());
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.registry.load_state(r)?;
        let n = r.len()?;
        if n != self.last_traversals.len() {
            return Err(SnapshotError::Malformed(format!(
                "telemetry tracks {} channels, snapshot {n}",
                self.last_traversals.len()
            )));
        }
        for t in &mut self.last_traversals {
            *t = r.u64()?;
        }
        self.window_start = r.u64()?;
        load_section(r, self.timeline.as_mut())?;
        load_section(r, self.flight.as_mut())?;
        Ok(())
    }
}

/// Writes one optional observer section: a presence flag, then (when
/// present) the observer's state as a nested length-prefixed container.
/// The length prefix lets a reader skip a section its network does not
/// collect, so observers can differ between save and restore.
fn save_section<T: Snapshot>(w: &mut SnapshotWriter, obs: Option<&T>) {
    match obs {
        Some(t) => {
            w.bool(true);
            let mut inner = SnapshotWriter::new();
            t.save_state(&mut inner);
            w.bytes(&inner.finish());
        }
        None => w.bool(false),
    }
}

/// Reads one optional observer section written by [`save_section`].
/// Present in the snapshot but absent here → skipped; absent in the
/// snapshot but enabled here → the observer keeps its fresh state (the
/// time-travel path: replay a plain checkpoint with recorders armed).
fn load_section<T: Snapshot>(
    r: &mut SnapshotReader<'_>,
    obs: Option<&mut T>,
) -> Result<(), SnapshotError> {
    if !r.bool()? {
        return Ok(());
    }
    let blob = r.bytes()?;
    if let Some(t) = obs {
        let mut inner = SnapshotReader::open(&blob)?;
        t.load_state(&mut inner)?;
        inner.finish()?;
    }
    Ok(())
}

impl Noc {
    /// Captures the complete mutable simulation state — every switch
    /// queue and arbitration pointer, NI packetization register, link
    /// pipeline stage and ACK/nACK back-channel, retransmission window,
    /// RNG stream position, and (when enabled) observer state — into a
    /// versioned, integrity-hashed byte container.
    ///
    /// Restoring the bytes with [`restore`](Self::restore) into a
    /// network freshly assembled from the **same spec, seed, and fault
    /// plan** resumes the run bit-exactly: statistics, reports, VCD
    /// continuations, and all future RNG draws match the uninterrupted
    /// run. Structural configuration is deliberately not stored.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.u64(self.now.as_u64());
        w.rng(&self.fault_rng);
        w.len(self.switches.len());
        for sw in &self.switches {
            sw.save_state(&mut w);
        }
        w.len(self.initiators.len());
        for ni in &self.initiators {
            ni.save_state(&mut w);
        }
        w.len(self.targets.len());
        for ni in &self.targets {
            ni.save_state(&mut w);
        }
        w.len(self.chan.len());
        // Per-channel field order (link, fwd latch, rev latch, fwd
        // arrival, rev arrival): the container stays byte-identical to
        // the per-channel-object layout this SoA form replaced.
        for i in 0..self.chan.len() {
            self.chan.link[i].save_state(&mut w);
            snap::save_opt_link_flit(&mut w, &self.chan.fwd_latch[i]);
            snap::save_opt_acknack(&mut w, &self.chan.rev_latch[i]);
            snap::save_opt_link_flit(&mut w, &self.chan.fwd_arrival[i]);
            snap::save_opt_acknack(&mut w, &self.chan.rev_arrival[i]);
        }
        // Observers, each in a skippable section: the restored network
        // may collect a different set.
        save_section(&mut w, self.trace.as_ref().map(|t| &t.vcd));
        save_section(&mut w, self.monitor.as_ref());
        save_section(&mut w, self.telemetry.as_deref());
        save_section(&mut w, self.attribution.as_deref());
        w.finish()
    }

    /// Restores state captured by [`checkpoint`](Self::checkpoint) into
    /// this network, which must have been assembled from the same spec,
    /// seed, and fault plan as the one the checkpoint was taken from.
    ///
    /// Observers need not match: a section present in the snapshot but
    /// not enabled here is skipped, and an observer enabled here but
    /// absent from the snapshot starts fresh (how time-travel replay
    /// arms the flight recorder and attribution on a plain checkpoint).
    ///
    /// # Errors
    ///
    /// Container-level problems (truncation, bad magic, version or hash
    /// mismatch) are reported before anything is touched; shape
    /// mismatches surface as [`SnapshotError::Malformed`] or
    /// [`SnapshotError::TrailingBytes`] part-way through — the network
    /// is then in an unspecified state and should be rebuilt.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::open(bytes)?;
        let now = r.u64()?;
        self.fault_rng = r.rng()?;
        let n = r.len()?;
        if n != self.switches.len() {
            return Err(SnapshotError::Malformed(format!(
                "network has {} switches, snapshot {n}",
                self.switches.len()
            )));
        }
        for sw in &mut self.switches {
            sw.load_state(&mut r)?;
        }
        let n = r.len()?;
        if n != self.initiators.len() {
            return Err(SnapshotError::Malformed(format!(
                "network has {} initiator NIs, snapshot {n}",
                self.initiators.len()
            )));
        }
        for ni in &mut self.initiators {
            ni.load_state(&mut r)?;
        }
        let n = r.len()?;
        if n != self.targets.len() {
            return Err(SnapshotError::Malformed(format!(
                "network has {} target NIs, snapshot {n}",
                self.targets.len()
            )));
        }
        for ni in &mut self.targets {
            ni.load_state(&mut r)?;
        }
        let n = r.len()?;
        if n != self.chan.len() {
            return Err(SnapshotError::Malformed(format!(
                "network has {} channels, snapshot {n}",
                self.chan.len()
            )));
        }
        for i in 0..self.chan.len() {
            self.chan.link[i].load_state(&mut r)?;
            self.chan.fwd_latch[i] = snap::load_opt_link_flit(&mut r)?;
            self.chan.rev_latch[i] = snap::load_opt_acknack(&mut r)?;
            self.chan.fwd_arrival[i] = snap::load_opt_link_flit(&mut r)?;
            self.chan.rev_arrival[i] = snap::load_opt_acknack(&mut r)?;
        }
        load_section(&mut r, self.trace.as_mut().map(|t| &mut t.vcd))?;
        load_section(&mut r, self.monitor.as_mut())?;
        load_section(&mut r, self.telemetry.as_deref_mut())?;
        load_section(&mut r, self.attribution.as_deref_mut())?;
        r.finish()?;
        self.now = Cycle::new(now);
        // The event schedule is a cache over the state just replaced;
        // the next fast-path step rebuilds it (including the wheel).
        self.sched.valid = false;
        Ok(())
    }
}

impl std::fmt::Debug for Noc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Noc")
            .field("name", &self.name)
            .field("switches", &self.switches.len())
            .field("initiators", &self.initiators.len())
            .field("targets", &self.targets.len())
            .field("channels", &self.chan.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpipes_topology::builders::mesh;

    fn demo_spec() -> (NocSpec, NiId, NiId) {
        let mut b = mesh(2, 2).unwrap();
        let cpu = b.attach_initiator("cpu", (0, 0)).unwrap();
        let mem = b.attach_target("mem", (1, 1)).unwrap();
        let mut spec = NocSpec::new("demo", b.into_topology());
        spec.map_address(mem, 0x0, 0x10000).unwrap();
        (spec, cpu, mem)
    }

    #[test]
    fn write_crosses_the_mesh() {
        let (spec, cpu, mem) = demo_spec();
        let mut noc = Noc::new(&spec).unwrap();
        noc.submit(cpu, Request::write(0x100, vec![0xAA]).unwrap())
            .unwrap();
        assert!(noc.run_until_idle(500), "network must drain");
        assert_eq!(noc.memory(mem).unwrap().peek(0x100), 0xAA);
        let stats = noc.stats();
        assert_eq!(stats.packets_delivered, 1);
        assert!(stats.flits_routed > 0);
    }

    #[test]
    fn read_round_trips() {
        let (spec, cpu, mem) = demo_spec();
        let mut noc = Noc::new(&spec).unwrap();
        noc.memory_mut(mem).unwrap().poke(0x40, 1234);
        noc.submit(cpu, Request::read(0x40, 1).unwrap()).unwrap();
        assert!(noc.run_until_idle(500));
        let resp = noc.take_response(cpu).unwrap().expect("response");
        assert_eq!(resp.data(), &[1234]);
        assert_eq!(noc.stats().packets_delivered, 2); // request + response
    }

    #[test]
    fn latency_scales_with_distance() {
        // 4x1 line: near target at (1,0), far target at (3,0).
        let mut b = mesh(4, 1).unwrap();
        let cpu = b.attach_initiator("cpu", (0, 0)).unwrap();
        let near = b.attach_target("near", (1, 0)).unwrap();
        let far = b.attach_target("far", (3, 0)).unwrap();
        let mut spec = NocSpec::new("line", b.into_topology());
        spec.map_address(near, 0x0000, 0x1000).unwrap();
        spec.map_address(far, 0x1000, 0x1000).unwrap();

        let mut noc = Noc::new(&spec).unwrap();
        noc.submit(cpu, Request::read(0x0, 1).unwrap()).unwrap();
        assert!(noc.run_until_idle(500));
        let near_lat = noc.stats().transaction_latency.mean();

        let mut noc2 = Noc::new(&spec).unwrap();
        noc2.submit(cpu, Request::read(0x1000, 1).unwrap()).unwrap();
        assert!(noc2.run_until_idle(500));
        let far_lat = noc2.stats().transaction_latency.mean();
        // 2 extra switches each way, 2 cycles per switch + link stages.
        assert!(far_lat > near_lat + 4.0, "near={near_lat} far={far_lat}");
    }

    #[test]
    fn unreliable_links_still_deliver() {
        let (mut spec, cpu, mem) = demo_spec();
        spec.link_error_rate = 0.05;
        let mut noc = Noc::with_seed(&spec, 42).unwrap();
        for i in 0..10u64 {
            noc.submit(cpu, Request::write(i * 8, vec![i + 1]).unwrap())
                .unwrap();
        }
        assert!(
            noc.run_until_idle(20_000),
            "network must drain despite errors"
        );
        for i in 0..10u64 {
            assert_eq!(noc.memory(mem).unwrap().peek(i * 8), i + 1);
        }
        let stats = noc.stats();
        assert!(stats.flits_corrupted > 0, "error injection must have fired");
        assert!(stats.retransmissions >= stats.flits_corrupted);
    }

    #[test]
    fn wrong_ni_kind_reported() {
        let (spec, cpu, mem) = demo_spec();
        let mut noc = Noc::new(&spec).unwrap();
        let err = noc.submit(mem, Request::read(0, 1).unwrap()).unwrap_err();
        assert_eq!(err, XpipesError::WrongNiKind(mem));
        let err2 = noc.memory(cpu).unwrap_err();
        assert_eq!(err2, XpipesError::WrongNiKind(cpu));
        let err3 = noc
            .submit(NiId(99), Request::read(0, 1).unwrap())
            .unwrap_err();
        assert_eq!(err3, XpipesError::UnknownNi(NiId(99)));
    }

    #[test]
    fn multiple_initiators_share_targets() {
        let mut b = mesh(2, 2).unwrap();
        let cpu0 = b.attach_initiator("cpu0", (0, 0)).unwrap();
        let cpu1 = b.attach_initiator("cpu1", (1, 0)).unwrap();
        let mem = b.attach_target("mem", (0, 1)).unwrap();
        let mut spec = NocSpec::new("multi", b.into_topology());
        spec.map_address(mem, 0x0, 0x10000).unwrap();
        let mut noc = Noc::new(&spec).unwrap();
        noc.submit(cpu0, Request::write(0x0, vec![1]).unwrap())
            .unwrap();
        noc.submit(cpu1, Request::write(0x8, vec![2]).unwrap())
            .unwrap();
        assert!(noc.run_until_idle(1000));
        assert_eq!(noc.memory(mem).unwrap().peek(0x0), 1);
        assert_eq!(noc.memory(mem).unwrap().peek(0x8), 2);
    }

    #[test]
    fn stats_accessors() {
        let (spec, cpu, _) = demo_spec();
        let mut noc = Noc::new(&spec).unwrap();
        noc.submit(cpu, Request::write(0x0, vec![1]).unwrap())
            .unwrap();
        noc.run_until_idle(500);
        assert!(noc.initiator_stats(cpu).is_some());
        assert!(noc.switch_stats(SwitchId(0)).is_some());
        assert!(noc.switch_stats(SwitchId(99)).is_none());
        assert_eq!(noc.name(), "demo");
        assert!(noc.now().as_u64() > 0);
        let dbg = format!("{noc:?}");
        assert!(dbg.contains("switches"));
    }

    #[test]
    fn interrupt_crosses_the_network() {
        let (spec, cpu, mem) = demo_spec();
        let mut noc = Noc::new(&spec).unwrap();
        assert_eq!(noc.pending_interrupts(cpu).unwrap(), 0);
        noc.raise_interrupt(mem, cpu).unwrap();
        assert!(noc.run_until_idle(500));
        assert_eq!(noc.pending_interrupts(cpu).unwrap(), 1);
        assert!(noc.take_interrupt(cpu).unwrap());
        assert!(!noc.take_interrupt(cpu).unwrap());
        // Interrupt packets must not fabricate OCP responses.
        assert!(noc.take_response(cpu).unwrap().is_none());
    }

    #[test]
    fn interrupt_endpoint_validation() {
        let (spec, cpu, mem) = demo_spec();
        let mut noc = Noc::new(&spec).unwrap();
        assert!(
            noc.raise_interrupt(cpu, mem).is_err(),
            "swapped roles rejected"
        );
        assert!(noc.raise_interrupt(mem, NiId(99)).is_err());
        assert!(noc.pending_interrupts(mem).is_err());
    }

    #[test]
    fn trace_captures_channel_activity() {
        let (spec, cpu, _) = demo_spec();
        let mut noc = Noc::new(&spec).unwrap();
        noc.enable_trace();
        noc.submit(cpu, Request::write(0x0, vec![1, 2]).unwrap())
            .unwrap();
        noc.run_until_idle(500);
        let vcd = noc.vcd().expect("tracing enabled");
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains("$var wire 8"));
        // Some channel asserted valid at some point.
        assert!(
            vcd.lines().any(|l| l.starts_with("1")),
            "no activity recorded"
        );
        assert!(Noc::new(&spec).unwrap().vcd().is_none());
    }

    /// Drives both networks forward in lock-step, submitting the same
    /// traffic, and asserts their checkpoints stay byte-identical (the
    /// strongest state-equality check available: every queue, window,
    /// RNG position, and statistic must match).
    fn assert_locked_futures(a: &mut Noc, b: &mut Noc, cpu: NiId, cycles: u64) {
        for t in 0..cycles {
            if t % 17 == 0 {
                let req = Request::write(8 * (t % 64), vec![t]).unwrap();
                a.submit(cpu, req.clone()).unwrap();
                b.submit(cpu, req).unwrap();
            }
            a.step();
            b.step();
        }
        assert_eq!(
            a.checkpoint(),
            b.checkpoint(),
            "restored network diverged from the original"
        );
    }

    #[test]
    fn checkpoint_restore_resumes_identically_under_faults() {
        let (spec, cpu, mem) = demo_spec();
        let plan = FaultPlan {
            flit_corruption_rate: 0.02,
            ack_loss_rate: 0.02,
            stall_rate: 0.001,
            stall_len: 3,
            ..FaultPlan::none()
        };
        let mut noc = Noc::with_faults(&spec, 77, &plan).unwrap();
        for i in 0..6u64 {
            noc.submit(cpu, Request::write(i * 8, vec![i + 1]).unwrap())
                .unwrap();
        }
        noc.run(120); // checkpoint mid-flight, retransmissions pending
        let bytes = noc.checkpoint();

        let mut twin = Noc::with_faults(&spec, 77, &plan).unwrap();
        twin.restore(&bytes).unwrap();
        assert_eq!(twin.now(), noc.now());
        assert_locked_futures(&mut noc, &mut twin, cpu, 600);
        assert!(noc.run_until_idle(20_000));
        assert!(twin.run_until_idle(20_000));
        assert_eq!(
            noc.memory(mem).unwrap().export_words(),
            twin.memory(mem).unwrap().export_words()
        );
    }

    #[test]
    fn checkpoint_roundtrips_observer_state() {
        let (spec, cpu, _) = demo_spec();
        let mut noc = Noc::with_seed(&spec, 5).unwrap();
        noc.enable_monitor(MonitorConfig::default());
        noc.enable_telemetry(TelemetryConfig::full());
        noc.enable_attribution();
        noc.submit(cpu, Request::write(0x0, vec![1, 2, 3]).unwrap())
            .unwrap();
        noc.run(40);
        let bytes = noc.checkpoint();

        let mut twin = Noc::with_seed(&spec, 5).unwrap();
        twin.enable_monitor(MonitorConfig::default());
        twin.enable_telemetry(TelemetryConfig::full());
        twin.enable_attribution();
        twin.restore(&bytes).unwrap();
        assert_locked_futures(&mut noc, &mut twin, cpu, 300);
        noc.flush_telemetry();
        twin.flush_telemetry();
        assert_eq!(
            noc.telemetry_registry().unwrap().to_json().render(),
            twin.telemetry_registry().unwrap().to_json().render()
        );
        assert_eq!(noc.timeline_json(), twin.timeline_json());
        assert_eq!(
            noc.attribution_report().map(|j| j.render()),
            twin.attribution_report().map(|j| j.render())
        );
    }

    #[test]
    fn restore_tolerates_observer_mismatch() {
        let (spec, cpu, _) = demo_spec();
        // Snapshot from a plain network...
        let mut noc = Noc::with_seed(&spec, 5).unwrap();
        noc.submit(cpu, Request::write(0x0, vec![9]).unwrap())
            .unwrap();
        noc.run(25);
        let plain = noc.checkpoint();
        // ...restores into one with every recorder armed (time travel).
        let mut replay = Noc::with_seed(&spec, 5).unwrap();
        replay.enable_monitor(MonitorConfig::default());
        replay.enable_telemetry(TelemetryConfig::full());
        replay.enable_attribution();
        replay.restore(&plain).unwrap();
        assert_eq!(replay.now(), noc.now());
        assert!(replay.run_until_idle(2_000));
        assert!(replay.monitor_violations().is_empty());

        // And a snapshot with observers restores into a plain network:
        // the sections are skipped wholesale.
        let rich = replay.checkpoint();
        let mut plain_noc = Noc::with_seed(&spec, 5).unwrap();
        plain_noc.restore(&rich).unwrap();
        assert_eq!(plain_noc.now(), replay.now());
    }

    #[test]
    fn restore_rejects_differently_shaped_network() {
        let (spec, cpu, _) = demo_spec();
        let mut noc = Noc::new(&spec).unwrap();
        noc.submit(cpu, Request::write(0x0, vec![1]).unwrap())
            .unwrap();
        noc.run(10);
        let bytes = noc.checkpoint();

        let mut b = mesh(3, 3).unwrap();
        let cpu2 = b.attach_initiator("cpu", (0, 0)).unwrap();
        let mem2 = b.attach_target("mem", (2, 2)).unwrap();
        let mut other_spec = NocSpec::new("other", b.into_topology());
        other_spec.map_address(mem2, 0x0, 0x10000).unwrap();
        let _ = cpu2;
        let mut other = Noc::new(&other_spec).unwrap();
        assert!(other.restore(&bytes).is_err());
        assert!(matches!(
            Noc::new(&spec).unwrap().restore(b"junk"),
            Err(SnapshotError::Truncated)
        ));
    }

    #[test]
    fn checkpoint_stitches_byte_identical_vcd() {
        let (spec, cpu, _) = demo_spec();
        // Uninterrupted traced run.
        let mut whole = Noc::with_seed(&spec, 11).unwrap();
        whole.enable_trace();
        whole
            .submit(cpu, Request::write(0x0, vec![1, 2, 3, 4]).unwrap())
            .unwrap();
        whole.run(200);

        // Same run checkpointed at cycle 60 and continued elsewhere.
        let mut first = Noc::with_seed(&spec, 11).unwrap();
        first.enable_trace();
        first
            .submit(cpu, Request::write(0x0, vec![1, 2, 3, 4]).unwrap())
            .unwrap();
        first.run(60);
        let bytes = first.checkpoint();
        let head = first.vcd().unwrap();

        let mut second = Noc::with_seed(&spec, 11).unwrap();
        second.enable_trace();
        second.restore(&bytes).unwrap();
        second.run(140);
        let tail = second.vcd().unwrap();
        assert_eq!(format!("{head}{tail}"), whole.vcd().unwrap());
    }

    #[test]
    fn burst_write_throughput() {
        let (spec, cpu, mem) = demo_spec();
        let mut noc = Noc::new(&spec).unwrap();
        let data: Vec<u64> = (0..16).collect();
        noc.submit(cpu, Request::write(0x0, data.clone()).unwrap())
            .unwrap();
        assert!(noc.run_until_idle(1000));
        for (i, v) in data.iter().enumerate() {
            assert_eq!(noc.memory(mem).unwrap().peek((i * 8) as u64), *v);
        }
    }
}
