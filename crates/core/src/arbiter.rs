//! Switch arbitration: fixed-priority and round-robin grant logic.
//!
//! Each switch output port owns one arbiter that picks among the input
//! ports requesting it ("Arbitration: Fixed / RR" in the paper). The
//! round-robin variant rotates priority past the last grant, giving
//! starvation freedom; the fixed variant is smaller and faster but unfair.

use xpipes_sim::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use xpipes_topology::spec::Arbitration;

/// A single-output arbiter over `n` requesters.
///
/// # Examples
///
/// ```
/// use xpipes::Arbiter;
/// use xpipes_topology::spec::Arbitration;
///
/// let mut arb = Arbiter::new(Arbitration::RoundRobin, 3);
/// assert_eq!(arb.grant(&[true, true, false]), Some(0));
/// // Priority rotates past the last winner.
/// assert_eq!(arb.grant(&[true, true, false]), Some(1));
/// assert_eq!(arb.grant(&[true, true, false]), Some(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arbiter {
    policy: Arbitration,
    inputs: usize,
    /// Index granted most recently (round-robin pointer).
    last: usize,
}

impl Arbiter {
    /// Creates an arbiter over `inputs` requesters.
    ///
    /// # Panics
    ///
    /// Panics when `inputs` is zero.
    pub fn new(policy: Arbitration, inputs: usize) -> Self {
        assert!(inputs > 0, "arbiter needs at least one input");
        Arbiter {
            policy,
            inputs,
            last: inputs - 1,
        }
    }

    /// The arbitration policy.
    pub fn policy(&self) -> Arbitration {
        self.policy
    }

    /// Number of requesters.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Grants one of the asserted requests, updating internal priority
    /// state. Returns `None` when no request is asserted.
    ///
    /// # Panics
    ///
    /// Panics when `requests.len()` differs from the configured input
    /// count.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.inputs, "request vector width mismatch");
        let winner = match self.policy {
            Arbitration::Fixed => requests.iter().position(|&r| r),
            Arbitration::RoundRobin => (1..=self.inputs)
                .map(|offset| (self.last + offset) % self.inputs)
                .find(|&i| requests[i]),
        };
        if let Some(w) = winner {
            self.last = w;
        }
        winner
    }

    /// Peeks the winner without updating priority state (used by
    /// allocation passes that may not commit the grant).
    pub fn peek(&self, requests: &[bool]) -> Option<usize> {
        self.clone().grant(requests)
    }

    /// Resets the round-robin pointer to its power-on state.
    pub fn reset(&mut self) {
        self.last = self.inputs - 1;
    }
}

impl Snapshot for Arbiter {
    /// Only the round-robin pointer is mutable; policy and width are
    /// structural.
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.len(self.last);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let last = r.len()?;
        if last >= self.inputs {
            return Err(SnapshotError::Malformed(format!(
                "arbiter pointer {last} outside {} inputs",
                self.inputs
            )));
        }
        self.last = last;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_always_prefers_lowest() {
        let mut arb = Arbiter::new(Arbitration::Fixed, 4);
        for _ in 0..5 {
            assert_eq!(arb.grant(&[false, true, true, false]), Some(1));
        }
        assert_eq!(arb.grant(&[true, true, true, true]), Some(0));
    }

    #[test]
    fn round_robin_rotates() {
        let mut arb = Arbiter::new(Arbitration::RoundRobin, 3);
        let all = [true, true, true];
        let seq: Vec<_> = (0..6).map(|_| arb.grant(&all).unwrap()).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_idle() {
        let mut arb = Arbiter::new(Arbitration::RoundRobin, 4);
        assert_eq!(arb.grant(&[false, false, true, false]), Some(2));
        // Next in rotation after 2 is 3, which is idle → wraps to 0.
        assert_eq!(arb.grant(&[true, false, false, false]), Some(0));
    }

    #[test]
    fn no_request_no_grant() {
        let mut arb = Arbiter::new(Arbitration::RoundRobin, 2);
        assert_eq!(arb.grant(&[false, false]), None);
        // Pointer must not move on empty grants.
        assert_eq!(arb.grant(&[true, true]), Some(0));
    }

    #[test]
    fn round_robin_is_starvation_free() {
        let mut arb = Arbiter::new(Arbitration::RoundRobin, 4);
        let mut grants = [0u32; 4];
        for _ in 0..400 {
            let w = arb.grant(&[true, true, true, true]).unwrap();
            grants[w] += 1;
        }
        assert_eq!(grants, [100; 4]);
    }

    #[test]
    fn fixed_starves_low_priority() {
        let mut arb = Arbiter::new(Arbitration::Fixed, 2);
        let mut low = 0;
        for _ in 0..100 {
            if arb.grant(&[true, true]) == Some(1) {
                low += 1;
            }
        }
        assert_eq!(low, 0);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut arb = Arbiter::new(Arbitration::RoundRobin, 3);
        assert_eq!(arb.peek(&[true, true, true]), Some(0));
        assert_eq!(arb.peek(&[true, true, true]), Some(0));
        assert_eq!(arb.grant(&[true, true, true]), Some(0));
        assert_eq!(arb.peek(&[true, true, true]), Some(1));
    }

    #[test]
    fn reset_restores_initial_priority() {
        let mut arb = Arbiter::new(Arbitration::RoundRobin, 3);
        arb.grant(&[true, true, true]);
        arb.grant(&[true, true, true]);
        arb.reset();
        assert_eq!(arb.grant(&[true, true, true]), Some(0));
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_inputs_panics() {
        Arbiter::new(Arbitration::Fixed, 0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_vector_width_panics() {
        Arbiter::new(Arbitration::Fixed, 2).grant(&[true]);
    }
}
