//! Property-based tests on the switch: wormhole integrity, conservation,
//! and arbitration fairness under randomized traffic.

use std::collections::VecDeque;

use proptest::prelude::*;

use xpipes::config::SwitchConfig;
use xpipes::flow_control::{AckNack, LinkFlit};
use xpipes::header::Header;
use xpipes::switch::Switch;
use xpipes::{Flit, FlitKind, FlitMeta};
use xpipes_ocp::{MCmd, Sideband, ThreadId};
use xpipes_sim::Cycle;
use xpipes_topology::route::SourceRoute;
use xpipes_topology::spec::Arbitration;
use xpipes_topology::PortId;

/// Builds the flit sequence of one packet headed for `out_port`.
fn packet(id: u64, out_port: u8, body: usize) -> Vec<Flit> {
    let route = SourceRoute::new(vec![PortId(out_port)]).expect("valid port");
    let header = Header::request(&route, 0, MCmd::Write, 1, ThreadId(0), 0, Sideband::NONE)
        .expect("valid header");
    let meta = FlitMeta::new(id, Cycle::ZERO, 0);
    if body == 0 {
        return vec![Flit::head(FlitKind::Single, id as u128, header, meta)];
    }
    let mut flits = vec![Flit::head(FlitKind::Header, id as u128, header, meta)];
    for i in 0..body {
        let kind = if i + 1 == body {
            FlitKind::Tail
        } else {
            FlitKind::Body
        };
        flits.push(Flit::new(kind, i as u128, meta));
    }
    flits
}

/// Drives a switch with per-input feeds until everything drains (or the
/// cycle budget runs out); returns the flits emitted per output.
fn drive(
    sw: &mut Switch,
    mut feeds: Vec<VecDeque<Flit>>,
    outputs: usize,
    max_cycles: usize,
) -> Vec<Vec<Flit>> {
    let mut seqs = vec![0u8; feeds.len()];
    let mut collected = vec![Vec::new(); outputs];
    for _ in 0..max_cycles {
        #[allow(clippy::needless_range_loop)]
        for o in 0..outputs {
            if let Some(lf) = sw.transmit(o, None) {
                // Ideal sink: ack immediately via the same-port reply.
                collected[o].push(lf.flit);
                sw.transmit(
                    o,
                    Some(AckNack {
                        seq: lf.seq,
                        ack: true,
                    }),
                );
            }
        }
        sw.crossbar();
        for (i, feed) in feeds.iter_mut().enumerate() {
            if let Some(front) = feed.front() {
                let lf = LinkFlit {
                    flit: *front,
                    seq: seqs[i],
                    corrupted: false,
                };
                if let Some(reply) = sw.receive(i, Some(lf)) {
                    if reply.ack {
                        feed.pop_front();
                        seqs[i] = (seqs[i] + 1) % 64;
                    }
                }
            }
        }
        if feeds.iter().all(VecDeque::is_empty) && sw.is_idle() {
            break;
        }
    }
    collected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every flit injected comes out exactly once at the routed output,
    /// regardless of packet sizes and input interleavings.
    #[test]
    fn switch_conserves_flits(
        plans in prop::collection::vec(
            (0usize..3, 0u8..3, 0usize..5), // (input, output, body flits)
            1..8,
        ),
        arbitration in prop_oneof![Just(Arbitration::Fixed), Just(Arbitration::RoundRobin)],
    ) {
        let mut cfg = SwitchConfig::new(3, 3, 32);
        cfg.arbitration = arbitration;
        let mut sw = Switch::new(cfg);
        let mut feeds = vec![VecDeque::new(), VecDeque::new(), VecDeque::new()];
        let mut expected: Vec<Vec<u64>> = vec![Vec::new(); 3];
        for (id, &(input, output, body)) in plans.iter().enumerate() {
            let flits = packet(id as u64, output, body);
            expected[output as usize].push(id as u64);
            feeds[input].extend(flits);
        }
        let out = drive(&mut sw, feeds, 3, 5_000);
        prop_assert!(sw.is_idle(), "switch must drain");
        for o in 0..3 {
            // Packets arrive whole; collect ids of head flits and count
            // total flits.
            let got_ids: Vec<u64> = out[o]
                .iter()
                .filter(|f| f.kind.is_head())
                .map(|f| f.meta.packet_id)
                .collect();
            let mut want = expected[o].clone();
            let mut got_sorted = got_ids.clone();
            want.sort_unstable();
            got_sorted.sort_unstable();
            prop_assert_eq!(got_sorted, want, "output {} ids", o);
            let want_flits: usize = plans
                .iter()
                .filter(|&&(_, out_p, _)| out_p as usize == o)
                .map(|&(_, _, body)| if body == 0 { 1 } else { body + 1 })
                .sum();
            prop_assert_eq!(out[o].len(), want_flits, "output {} flit count", o);
        }
    }

    /// Wormhole invariant: on any output, the flits between a head and
    /// its tail all belong to the same packet.
    #[test]
    fn switch_never_interleaves_packets(
        plans in prop::collection::vec(
            (0usize..4, 1usize..6), // (input, body flits) — all to output 0
            2..6,
        ),
    ) {
        let mut sw = Switch::new(SwitchConfig::new(4, 2, 32));
        let mut feeds = vec![VecDeque::new(), VecDeque::new(), VecDeque::new(), VecDeque::new()];
        for (id, &(input, body)) in plans.iter().enumerate() {
            feeds[input].extend(packet(id as u64, 0, body));
        }
        let out = drive(&mut sw, feeds, 2, 5_000);
        let mut current: Option<u64> = None;
        for f in &out[0] {
            match (f.kind.is_head(), current) {
                (true, None) => current = Some(f.meta.packet_id),
                (true, Some(_)) => prop_assert!(false, "head inside an open packet"),
                (false, Some(id)) => {
                    prop_assert_eq!(f.meta.packet_id, id, "foreign flit inside packet");
                }
                (false, None) => prop_assert!(false, "body flit with no open packet"),
            }
            if f.kind.is_tail() {
                current = None;
            }
        }
        prop_assert_eq!(current, None, "last packet must close");
    }

    /// Round-robin arbitration is starvation-free: with all inputs
    /// persistently requesting, consecutive grants to the same input
    /// never occur while others wait.
    #[test]
    fn round_robin_never_starves(inputs in 2usize..8, rounds in 10usize..50) {
        let mut arb = xpipes::Arbiter::new(Arbitration::RoundRobin, inputs);
        let all = vec![true; inputs];
        let mut last = None;
        let mut counts = vec![0usize; inputs];
        for _ in 0..rounds * inputs {
            let g = arb.grant(&all).expect("someone requests");
            prop_assert_ne!(Some(g), last, "back-to-back grant under full load");
            counts[g] += 1;
            last = Some(g);
        }
        let min = counts.iter().min().copied().unwrap_or(0);
        let max = counts.iter().max().copied().unwrap_or(0);
        prop_assert!(max - min <= 1, "uneven grants: {counts:?}");
    }

    /// Any arbiter only ever grants a requesting input.
    #[test]
    fn grants_only_requesters(
        requests in prop::collection::vec(any::<bool>(), 1..10),
        policy in prop_oneof![Just(Arbitration::Fixed), Just(Arbitration::RoundRobin)],
        spins in 1usize..8,
    ) {
        let mut arb = xpipes::Arbiter::new(policy, requests.len());
        for _ in 0..spins {
            if let Some(g) = arb.grant(&requests) {
                prop_assert!(requests[g]);
            } else {
                prop_assert!(requests.iter().all(|&r| !r));
            }
        }
    }
}
