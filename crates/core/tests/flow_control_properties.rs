//! Property-based tests on the [`LinkTx`]/[`LinkRx`] pair over a faulty
//! pipelined link: whatever the corruption and ACK-loss rates, the
//! delivered stream is always an exact in-order exactly-once prefix of
//! the injected stream, and at tolerated rates the whole stream
//! completes.

use proptest::prelude::*;

use xpipes::config::LinkConfig;
use xpipes::flow_control::{default_ack_timeout, LinkRx, LinkTx};
use xpipes::link::Link;
use xpipes::{Flit, FlitKind, FlitMeta};
use xpipes_sim::{Cycle, FaultPlan, SimRng};

/// One end-to-end simulation: `total` distinct flits pushed through a
/// sender → faulty link → receiver loop for at most `budget` cycles.
/// Returns the payload ids the receiver accepted, in acceptance order.
fn drive(
    total: u64,
    stages: u32,
    corruption: f64,
    ack_loss: f64,
    seed: u64,
    budget: u64,
) -> Vec<u64> {
    let capacity = 2 * stages as usize + 2;
    let mut tx = LinkTx::with_timeout(capacity, default_ack_timeout(capacity));
    let mut rx = LinkRx::new();
    let plan = FaultPlan {
        flit_corruption_rate: corruption,
        ack_loss_rate: ack_loss,
        ..FaultPlan::none()
    };
    let mut link = Link::with_faults(LinkConfig::new(stages), SimRng::seed(seed), plan);

    let mut delivered = Vec::new();
    let mut next_id = 0u64;
    let mut rev_arrival = None;
    let mut reply = None;
    for _ in 0..budget {
        tx.process(rev_arrival);
        let new = if tx.ready_for_new() && next_id < total {
            let flit = Flit::new(
                FlitKind::Single,
                u128::from(next_id),
                FlitMeta::new(next_id, Cycle::ZERO, 0),
            );
            next_id += 1;
            Some(flit)
        } else {
            None
        };
        let fwd = tx.transmit(new);
        let (fwd_arrival, rev_out) = link.shift(fwd, reply.take());
        rev_arrival = rev_out;
        if let Some(lf) = fwd_arrival {
            let (accepted, r) = rx.receive(lf, true);
            if let Some(flit) = accepted {
                delivered.push(flit.bits as u64);
            }
            reply = Some(r);
        }
        if delivered.len() as u64 == total && tx.in_flight() == 0 {
            break;
        }
    }
    delivered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Safety at any fault intensity: the receiver's accepted stream is
    /// exactly `0..n` in order — no loss inside the prefix, no
    /// duplicate, no reordering — even when the run does not complete
    /// within the budget.
    #[test]
    fn delivery_is_an_exact_in_order_prefix(
        total in 1u64..48,
        stages in 1u32..4,
        corruption in 0.0f64..0.35,
        ack_loss in 0.0f64..0.25,
        seed in 0u64..1 << 48,
    ) {
        let delivered = drive(total, stages, corruption, ack_loss, seed, 20_000);
        prop_assert!(delivered.len() as u64 <= total);
        for (i, id) in delivered.iter().enumerate() {
            prop_assert_eq!(*id, i as u64, "delivery out of order at {}", i);
        }
    }

    /// Liveness at tolerated rates: the paper's retransmission layer
    /// pushes every flit through a moderately faulty link, given cycles.
    #[test]
    fn moderate_fault_rates_still_complete(
        total in 1u64..32,
        stages in 1u32..4,
        corruption in 0.0f64..0.10,
        ack_loss in 0.0f64..0.05,
        seed in 0u64..1 << 48,
    ) {
        let delivered = drive(total, stages, corruption, ack_loss, seed, 60_000);
        prop_assert_eq!(delivered.len() as u64, total, "stream did not complete");
    }

    /// A fault-free link needs no retransmission budget at all: the
    /// stream completes in roughly pipeline-depth + window time.
    #[test]
    fn clean_link_completes_quickly(
        total in 1u64..32,
        stages in 1u32..4,
        seed in 0u64..1 << 48,
    ) {
        let budget = 4 * (total + u64::from(stages) + 4);
        let delivered = drive(total, stages, 0.0, 0.0, seed, budget);
        prop_assert_eq!(delivered.len() as u64, total);
    }
}
