//! OCP signal-level vocabulary: commands, responses, burst codes, threads
//! and sideband signals.

use std::fmt;

/// OCP master command (`MCmd`).
///
/// The xpipes Lite NI supports the read/write family; `Idle` encodes "no
/// request this cycle" in beat streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MCmd {
    /// No request presented.
    #[default]
    Idle,
    /// Posted write: completes at the initiator without a response.
    Write,
    /// Read: always returns a data response.
    Read,
    /// Exclusive read (read-locked), used by synchronisation primitives.
    ReadEx,
    /// Non-posted write: the target must acknowledge with a response.
    WriteNonPost,
}

impl MCmd {
    /// True for commands that elicit a response packet from the target.
    pub const fn expects_response(self) -> bool {
        matches!(self, MCmd::Read | MCmd::ReadEx | MCmd::WriteNonPost)
    }

    /// True for commands that carry write payload beats.
    pub const fn carries_data(self) -> bool {
        matches!(self, MCmd::Write | MCmd::WriteNonPost)
    }

    /// 3-bit field encoding used in the packet header.
    pub const fn encode(self) -> u8 {
        match self {
            MCmd::Idle => 0,
            MCmd::Write => 1,
            MCmd::Read => 2,
            MCmd::ReadEx => 3,
            MCmd::WriteNonPost => 4,
        }
    }

    /// Decodes a 3-bit header field.
    ///
    /// Returns `None` for reserved encodings.
    pub const fn decode(bits: u8) -> Option<Self> {
        match bits {
            0 => Some(MCmd::Idle),
            1 => Some(MCmd::Write),
            2 => Some(MCmd::Read),
            3 => Some(MCmd::ReadEx),
            4 => Some(MCmd::WriteNonPost),
            _ => None,
        }
    }
}

impl fmt::Display for MCmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MCmd::Idle => "IDLE",
            MCmd::Write => "WR",
            MCmd::Read => "RD",
            MCmd::ReadEx => "RDEX",
            MCmd::WriteNonPost => "WRNP",
        };
        f.write_str(s)
    }
}

/// OCP slave response code (`SResp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SResp {
    /// No response this cycle.
    #[default]
    Null,
    /// Data valid / accept.
    Dva,
    /// Request failed (e.g. exclusive access lost).
    Fail,
    /// Error response.
    Err,
}

impl SResp {
    /// 2-bit field encoding used in response packet headers.
    pub const fn encode(self) -> u8 {
        match self {
            SResp::Null => 0,
            SResp::Dva => 1,
            SResp::Fail => 2,
            SResp::Err => 3,
        }
    }

    /// Decodes the 2-bit header field (total function: all codes defined).
    pub const fn decode(bits: u8) -> Self {
        match bits & 0b11 {
            1 => SResp::Dva,
            2 => SResp::Fail,
            3 => SResp::Err,
            _ => SResp::Null,
        }
    }
}

impl fmt::Display for SResp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SResp::Null => "NULL",
            SResp::Dva => "DVA",
            SResp::Fail => "FAIL",
            SResp::Err => "ERR",
        };
        f.write_str(s)
    }
}

/// OCP burst address sequence (`MBurstSeq` subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BurstSeq {
    /// Incrementing addresses (cache-line fills, DMA).
    #[default]
    Incr,
    /// Wrapping burst around an aligned boundary (critical-word-first).
    Wrap,
    /// Constant address (FIFO/stream port).
    Stream,
}

impl BurstSeq {
    /// 2-bit field encoding used in the packet header.
    pub const fn encode(self) -> u8 {
        match self {
            BurstSeq::Incr => 0,
            BurstSeq::Wrap => 1,
            BurstSeq::Stream => 2,
        }
    }

    /// Decodes the 2-bit header field; `None` for the reserved code.
    pub const fn decode(bits: u8) -> Option<Self> {
        match bits {
            0 => Some(BurstSeq::Incr),
            1 => Some(BurstSeq::Wrap),
            2 => Some(BurstSeq::Stream),
            _ => None,
        }
    }

    /// Address of beat `beat` for a burst starting at `base` with
    /// `beat_bytes`-wide data and `len` total beats.
    pub fn beat_addr(self, base: u64, beat: u32, len: u32, beat_bytes: u64) -> u64 {
        match self {
            BurstSeq::Incr => base + beat as u64 * beat_bytes,
            BurstSeq::Stream => base,
            BurstSeq::Wrap => {
                let span = len as u64 * beat_bytes;
                if span == 0 {
                    return base;
                }
                let aligned = (base / span) * span;
                aligned + (base + beat as u64 * beat_bytes) % span
            }
        }
    }
}

/// OCP thread identifier (`MThreadID`) — the threading extension lets one
/// NI interleave several outstanding transaction streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ThreadId(pub u8);

impl ThreadId {
    /// Maximum threads the header encoding supports (4 bits).
    pub const MAX: u8 = 15;
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Sideband signals carried out-of-band along a transaction — the paper's
/// NI forwards interrupts and user flags through the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Sideband {
    /// Interrupt request line state.
    pub interrupt: bool,
    /// Implementation-defined user flags (MFlag/SFlag, 4 bits used).
    pub flags: u8,
}

impl Sideband {
    /// No sideband activity.
    pub const NONE: Sideband = Sideband {
        interrupt: false,
        flags: 0,
    };

    /// 5-bit field encoding used in the packet header.
    pub const fn encode(self) -> u8 {
        ((self.interrupt as u8) << 4) | (self.flags & 0x0F)
    }

    /// Decodes the 5-bit header field.
    pub const fn decode(bits: u8) -> Self {
        Sideband {
            interrupt: (bits >> 4) & 1 == 1,
            flags: bits & 0x0F,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcmd_response_expectations() {
        assert!(!MCmd::Write.expects_response());
        assert!(MCmd::Read.expects_response());
        assert!(MCmd::ReadEx.expects_response());
        assert!(MCmd::WriteNonPost.expects_response());
        assert!(!MCmd::Idle.expects_response());
    }

    #[test]
    fn mcmd_data_carriage() {
        assert!(MCmd::Write.carries_data());
        assert!(MCmd::WriteNonPost.carries_data());
        assert!(!MCmd::Read.carries_data());
    }

    #[test]
    fn mcmd_codec_roundtrip() {
        for cmd in [
            MCmd::Idle,
            MCmd::Write,
            MCmd::Read,
            MCmd::ReadEx,
            MCmd::WriteNonPost,
        ] {
            assert_eq!(MCmd::decode(cmd.encode()), Some(cmd));
        }
        assert_eq!(MCmd::decode(7), None);
    }

    #[test]
    fn sresp_codec_total() {
        for resp in [SResp::Null, SResp::Dva, SResp::Fail, SResp::Err] {
            assert_eq!(SResp::decode(resp.encode()), resp);
        }
        // Upper bits ignored.
        assert_eq!(SResp::decode(0b101), SResp::Dva);
    }

    #[test]
    fn burst_seq_codec() {
        for seq in [BurstSeq::Incr, BurstSeq::Wrap, BurstSeq::Stream] {
            assert_eq!(BurstSeq::decode(seq.encode()), Some(seq));
        }
        assert_eq!(BurstSeq::decode(3), None);
    }

    #[test]
    fn incr_addresses() {
        let s = BurstSeq::Incr;
        assert_eq!(s.beat_addr(0x100, 0, 4, 4), 0x100);
        assert_eq!(s.beat_addr(0x100, 3, 4, 4), 0x10C);
    }

    #[test]
    fn stream_addresses_constant() {
        let s = BurstSeq::Stream;
        for beat in 0..8 {
            assert_eq!(s.beat_addr(0x80, beat, 8, 4), 0x80);
        }
    }

    #[test]
    fn wrap_addresses_wrap_at_boundary() {
        // 4-beat x 4-byte wrap burst starting mid-line at 0x108:
        // 0x108, 0x10C, then wraps to 0x100, 0x104.
        let s = BurstSeq::Wrap;
        assert_eq!(s.beat_addr(0x108, 0, 4, 4), 0x108);
        assert_eq!(s.beat_addr(0x108, 1, 4, 4), 0x10C);
        assert_eq!(s.beat_addr(0x108, 2, 4, 4), 0x100);
        assert_eq!(s.beat_addr(0x108, 3, 4, 4), 0x104);
    }

    #[test]
    fn wrap_zero_len_is_base() {
        assert_eq!(BurstSeq::Wrap.beat_addr(0x42, 0, 0, 4), 0x42);
    }

    #[test]
    fn sideband_codec_roundtrip() {
        for interrupt in [false, true] {
            for flags in 0..16 {
                let sb = Sideband { interrupt, flags };
                assert_eq!(Sideband::decode(sb.encode()), sb);
            }
        }
        assert_eq!(Sideband::NONE.encode(), 0);
    }

    #[test]
    fn display_strings() {
        assert_eq!(MCmd::Read.to_string(), "RD");
        assert_eq!(SResp::Dva.to_string(), "DVA");
        assert_eq!(ThreadId(3).to_string(), "T3");
    }
}
