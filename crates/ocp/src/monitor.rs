//! OCP protocol-compliance monitor.
//!
//! The monitor observes the beat streams crossing an OCP interface and
//! flags violations of the rules the xpipes NI relies on. It is attached in
//! integration tests and can be enabled on any simulated socket.

use std::fmt;

use crate::transaction::{ReqBeat, RespBeat};
use crate::types::{MCmd, SResp, ThreadId};

/// A detected protocol violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Command changed in the middle of a burst.
    CmdChangedMidBurst {
        thread: ThreadId,
        was: MCmd,
        now: MCmd,
    },
    /// Beat index did not increment by one.
    NonContiguousBeat {
        thread: ThreadId,
        expected: u32,
        got: u32,
    },
    /// More beats presented than the declared burst length.
    BurstOverrun { thread: ThreadId, burst_len: u32 },
    /// `last` asserted before the declared burst length was reached.
    PrematureLast {
        thread: ThreadId,
        beat: u32,
        burst_len: u32,
    },
    /// `last` missing on the final beat.
    MissingLast { thread: ThreadId, burst_len: u32 },
    /// A response arrived on a thread with no outstanding request.
    OrphanResponse { thread: ThreadId, tag: u8 },
    /// A `Null` response code was presented as a valid beat.
    NullResponseBeat { thread: ThreadId },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::CmdChangedMidBurst { thread, was, now } => {
                write!(f, "{thread}: command changed mid-burst from {was} to {now}")
            }
            Violation::NonContiguousBeat {
                thread,
                expected,
                got,
            } => {
                write!(f, "{thread}: beat {got} where {expected} expected")
            }
            Violation::BurstOverrun { thread, burst_len } => {
                write!(f, "{thread}: more than {burst_len} beats presented")
            }
            Violation::PrematureLast {
                thread,
                beat,
                burst_len,
            } => {
                write!(f, "{thread}: last asserted at beat {beat} of {burst_len}")
            }
            Violation::MissingLast { thread, burst_len } => {
                write!(f, "{thread}: final beat {burst_len} missing last")
            }
            Violation::OrphanResponse { thread, tag } => {
                write!(
                    f,
                    "{thread}: response tag {tag} without outstanding request"
                )
            }
            Violation::NullResponseBeat { thread } => {
                write!(f, "{thread}: NULL response presented as a beat")
            }
        }
    }
}

#[derive(Debug, Clone)]
struct BurstState {
    cmd: MCmd,
    burst_len: u32,
    next_beat: u32,
}

/// Observes request and response beats and records violations.
///
/// One monitor instance watches one OCP socket. Outstanding-request
/// tracking is per `(thread, tag)` pair, supporting the threading
/// extensions.
///
/// # Examples
///
/// ```
/// use xpipes_ocp::{Monitor, Request};
///
/// # fn main() -> Result<(), xpipes_ocp::OcpError> {
/// let mut mon = Monitor::new();
/// let req = Request::write(0x10, vec![1, 2])?;
/// for beat in req.to_beats() {
///     mon.observe_request(&beat);
/// }
/// assert!(mon.violations().is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Monitor {
    bursts: Vec<(ThreadId, BurstState)>,
    outstanding: Vec<(ThreadId, u8, u32)>, // thread, tag, expected beats
    violations: Vec<Violation>,
    requests_seen: u64,
    responses_seen: u64,
}

impl Monitor {
    /// Creates an idle monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Number of request beats observed.
    pub fn requests_seen(&self) -> u64 {
        self.requests_seen
    }

    /// Number of response beats observed.
    pub fn responses_seen(&self) -> u64 {
        self.responses_seen
    }

    /// True when no violations were detected.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Feeds one request beat.
    pub fn observe_request(&mut self, beat: &ReqBeat) {
        self.requests_seen += 1;
        let thread = beat.thread;
        let idx = self.bursts.iter().position(|(t, _)| *t == thread);
        match idx {
            None => {
                // New burst begins.
                if beat.beat != 0 {
                    self.violations.push(Violation::NonContiguousBeat {
                        thread,
                        expected: 0,
                        got: beat.beat,
                    });
                }
                let total = if beat.cmd.carries_data() {
                    beat.burst_len
                } else {
                    1
                };
                if beat.last {
                    if beat.beat + 1 < total {
                        self.violations.push(Violation::PrematureLast {
                            thread,
                            beat: beat.beat,
                            burst_len: total,
                        });
                    }
                    self.complete_request(beat);
                } else {
                    self.bursts.push((
                        thread,
                        BurstState {
                            cmd: beat.cmd,
                            burst_len: total,
                            next_beat: 1,
                        },
                    ));
                }
            }
            Some(i) => {
                let state = &mut self.bursts[i].1;
                if beat.cmd != state.cmd {
                    self.violations.push(Violation::CmdChangedMidBurst {
                        thread,
                        was: state.cmd,
                        now: beat.cmd,
                    });
                }
                if beat.beat != state.next_beat {
                    self.violations.push(Violation::NonContiguousBeat {
                        thread,
                        expected: state.next_beat,
                        got: beat.beat,
                    });
                }
                if beat.beat >= state.burst_len {
                    self.violations.push(Violation::BurstOverrun {
                        thread,
                        burst_len: state.burst_len,
                    });
                }
                state.next_beat = beat.beat + 1;
                let done = beat.last;
                let premature = beat.last && beat.beat + 1 < state.burst_len;
                let missing = !beat.last && beat.beat + 1 == state.burst_len;
                let burst_len = state.burst_len;
                if premature {
                    self.violations.push(Violation::PrematureLast {
                        thread,
                        beat: beat.beat,
                        burst_len,
                    });
                }
                if missing {
                    self.violations
                        .push(Violation::MissingLast { thread, burst_len });
                }
                if done || missing {
                    self.bursts.remove(i);
                    self.complete_request(beat);
                }
            }
        }
    }

    fn complete_request(&mut self, beat: &ReqBeat) {
        if beat.cmd.expects_response() {
            let beats = match beat.cmd {
                MCmd::Read | MCmd::ReadEx => beat.burst_len,
                _ => 1,
            };
            self.outstanding.push((beat.thread, beat.tag, beats));
        }
    }

    /// Feeds one response beat.
    pub fn observe_response(&mut self, beat: &RespBeat) {
        self.responses_seen += 1;
        if beat.resp == SResp::Null {
            self.violations.push(Violation::NullResponseBeat {
                thread: beat.thread,
            });
            return;
        }
        let pos = self
            .outstanding
            .iter()
            .position(|(t, tag, _)| *t == beat.thread && *tag == beat.tag);
        match pos {
            None => {
                self.violations.push(Violation::OrphanResponse {
                    thread: beat.thread,
                    tag: beat.tag,
                });
            }
            Some(i) => {
                let remaining = &mut self.outstanding[i].2;
                *remaining = remaining.saturating_sub(1);
                if beat.last || *remaining == 0 {
                    self.outstanding.remove(i);
                }
            }
        }
    }

    /// Number of requests still awaiting a response.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{Request, RequestBuilder, Response};

    fn feed_request(mon: &mut Monitor, req: &Request) {
        for beat in req.to_beats() {
            mon.observe_request(&beat);
        }
    }

    #[test]
    fn clean_write_burst() {
        let mut mon = Monitor::new();
        feed_request(&mut mon, &Request::write(0, vec![1, 2, 3]).unwrap());
        assert!(mon.is_clean(), "{:?}", mon.violations());
        assert_eq!(mon.requests_seen(), 3);
        assert_eq!(mon.outstanding(), 0); // posted write: no response
    }

    #[test]
    fn clean_read_and_response() {
        let mut mon = Monitor::new();
        let req = Request::read(0, 2).unwrap();
        feed_request(&mut mon, &req);
        assert_eq!(mon.outstanding(), 1);
        let resp = Response::for_request(&req, vec![4, 5]).unwrap();
        for beat in resp.to_beats() {
            mon.observe_response(&beat);
        }
        assert!(mon.is_clean(), "{:?}", mon.violations());
        assert_eq!(mon.outstanding(), 0);
    }

    #[test]
    fn orphan_response_detected() {
        let mut mon = Monitor::new();
        let resp = Response::from_parts(SResp::Dva, vec![1], ThreadId(0), 7);
        for beat in resp.to_beats() {
            mon.observe_response(&beat);
        }
        assert_eq!(
            mon.violations(),
            &[Violation::OrphanResponse {
                thread: ThreadId(0),
                tag: 7
            }]
        );
    }

    #[test]
    fn null_response_detected() {
        let mut mon = Monitor::new();
        let beat = RespBeat {
            resp: SResp::Null,
            data: 0,
            beat: 0,
            last: true,
            thread: ThreadId(1),
            tag: 0,
        };
        mon.observe_response(&beat);
        assert_eq!(
            mon.violations(),
            &[Violation::NullResponseBeat {
                thread: ThreadId(1)
            }]
        );
    }

    #[test]
    fn premature_last_detected() {
        let mut mon = Monitor::new();
        let req = Request::write(0, vec![1, 2, 3]).unwrap();
        let mut beats: Vec<_> = req.to_beats().collect();
        beats[1].last = true; // lie: burst of 3 ends at beat 1
        mon.observe_request(&beats[0]);
        mon.observe_request(&beats[1]);
        assert!(mon.violations().iter().any(|v| matches!(
            v,
            Violation::PrematureLast {
                beat: 1,
                burst_len: 3,
                ..
            }
        )));
    }

    #[test]
    fn missing_last_detected() {
        let mut mon = Monitor::new();
        let req = Request::write(0, vec![1, 2]).unwrap();
        let mut beats: Vec<_> = req.to_beats().collect();
        beats[1].last = false;
        for b in &beats {
            mon.observe_request(b);
        }
        assert!(mon
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::MissingLast { burst_len: 2, .. })));
    }

    #[test]
    fn command_change_mid_burst_detected() {
        let mut mon = Monitor::new();
        let req = Request::write(0, vec![1, 2, 3]).unwrap();
        let mut beats: Vec<_> = req.to_beats().collect();
        beats[1].cmd = MCmd::WriteNonPost;
        mon.observe_request(&beats[0]);
        mon.observe_request(&beats[1]);
        assert!(mon
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::CmdChangedMidBurst { .. })));
    }

    #[test]
    fn non_contiguous_beat_detected() {
        let mut mon = Monitor::new();
        let req = Request::write(0, vec![1, 2, 3]).unwrap();
        let beats: Vec<_> = req.to_beats().collect();
        mon.observe_request(&beats[0]);
        mon.observe_request(&beats[2]); // skipped beat 1
        assert!(mon.violations().iter().any(|v| matches!(
            v,
            Violation::NonContiguousBeat {
                expected: 1,
                got: 2,
                ..
            }
        )));
    }

    #[test]
    fn interleaved_threads_tracked_independently() {
        let mut mon = Monitor::new();
        let a = RequestBuilder::new(MCmd::Write, 0)
            .data(vec![1, 2])
            .thread(ThreadId(0))
            .build()
            .unwrap();
        let b = RequestBuilder::new(MCmd::Write, 0)
            .data(vec![3, 4])
            .thread(ThreadId(1))
            .build()
            .unwrap();
        let ab: Vec<_> = a.to_beats().collect();
        let bb: Vec<_> = b.to_beats().collect();
        // Interleave: a0 b0 a1 b1 — legal thanks to threading extensions.
        mon.observe_request(&ab[0]);
        mon.observe_request(&bb[0]);
        mon.observe_request(&ab[1]);
        mon.observe_request(&bb[1]);
        assert!(mon.is_clean(), "{:?}", mon.violations());
    }

    #[test]
    fn nonposted_write_expects_ack() {
        let mut mon = Monitor::new();
        let req = RequestBuilder::new(MCmd::WriteNonPost, 0)
            .data(vec![9])
            .tag(3)
            .build()
            .unwrap();
        feed_request(&mut mon, &req);
        assert_eq!(mon.outstanding(), 1);
        let resp = Response::for_request(&req, vec![]).unwrap();
        for beat in resp.to_beats() {
            mon.observe_response(&beat);
        }
        assert_eq!(mon.outstanding(), 0);
        assert!(mon.is_clean());
    }

    #[test]
    fn violation_display() {
        let v = Violation::OrphanResponse {
            thread: ThreadId(2),
            tag: 5,
        };
        assert_eq!(
            v.to_string(),
            "T2: response tag 5 without outstanding request"
        );
    }
}
