//! Reference behavioural OCP cores: a slave memory and a scripted master.
//!
//! These stand in for the IP cores of a real MPSoC so that an assembled
//! xpipes NoC can be simulated end-to-end. Both are deliberately simple —
//! fidelity lives in the protocol, not in the cores.

use std::collections::HashMap;

use crate::transaction::{OcpError, Request, Response};
use crate::types::{MCmd, SResp};

/// A behavioural OCP slave: a 64-bit-word memory with configurable access
/// latency.
///
/// # Examples
///
/// ```
/// use xpipes_ocp::{SlaveMemory, Request, SResp};
///
/// # fn main() -> Result<(), xpipes_ocp::OcpError> {
/// let mut mem = SlaveMemory::new(2); // 2-cycle access latency
/// mem.execute(&Request::write(0x100, vec![0xAB])?);
/// let resp = mem.execute(&Request::read(0x100, 1)?).expect("reads respond");
/// assert_eq!(resp.resp(), SResp::Dva);
/// assert_eq!(resp.data(), &[0xAB]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SlaveMemory {
    words: HashMap<u64, u64>,
    latency: u64,
    reads: u64,
    writes: u64,
}

impl SlaveMemory {
    /// Creates an empty memory with the given access latency in cycles.
    pub fn new(latency: u64) -> Self {
        SlaveMemory {
            words: HashMap::new(),
            latency,
            reads: 0,
            writes: 0,
        }
    }

    /// Access latency in cycles (modelled by the NI/simulator when
    /// scheduling the response).
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Number of read transactions served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write transactions served.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Reads a word directly (test backdoor).
    pub fn peek(&self, addr: u64) -> u64 {
        self.words.get(&(addr & !7)).copied().unwrap_or(0)
    }

    /// Writes a word directly (test backdoor).
    pub fn poke(&mut self, addr: u64, value: u64) {
        self.words.insert(addr & !7, value);
    }

    /// Memory contents as `(word_address, value)` pairs in ascending
    /// address order — the deterministic export checkpointing relies on.
    pub fn export_words(&self) -> Vec<(u64, u64)> {
        let mut words: Vec<(u64, u64)> = self.words.iter().map(|(&a, &v)| (a, v)).collect();
        words.sort_unstable_by_key(|&(a, _)| a);
        words
    }

    /// Replaces the memory contents and access counters with previously
    /// exported state (the inverse of [`export_words`](Self::export_words)
    /// plus [`reads`](Self::reads)/[`writes`](Self::writes)).
    pub fn import_state(
        &mut self,
        words: impl IntoIterator<Item = (u64, u64)>,
        reads: u64,
        writes: u64,
    ) {
        self.words = words.into_iter().collect();
        self.reads = reads;
        self.writes = writes;
    }

    /// Executes a whole transaction, returning the response if the command
    /// expects one. Addresses are word-aligned internally (8-byte words);
    /// writes honour the per-byte enables (`MByteEn`).
    pub fn execute(&mut self, req: &Request) -> Option<Response> {
        match req.cmd() {
            MCmd::Write | MCmd::WriteNonPost => {
                self.writes += 1;
                for beat in req.to_beats() {
                    let addr = beat.addr & !7;
                    let mask = byte_mask(beat.byte_en);
                    let old = self.words.get(&addr).copied().unwrap_or(0);
                    self.words.insert(addr, (old & !mask) | (beat.data & mask));
                }
                if req.expects_response() {
                    Some(Response::for_request(req, vec![]).expect("write ack carries no data"))
                } else {
                    None
                }
            }
            MCmd::Read | MCmd::ReadEx => {
                self.reads += 1;
                let data: Vec<u64> = (0..req.burst_len())
                    .map(|beat| {
                        let addr = req
                            .burst_seq()
                            .beat_addr(req.addr(), beat, req.burst_len(), 8);
                        self.peek(addr)
                    })
                    .collect();
                Some(Response::for_request(req, data).expect("length matches burst"))
            }
            MCmd::Idle => None,
        }
    }
}

/// Expands an 8-lane byte-enable field into a 64-bit write mask.
fn byte_mask(byte_en: u8) -> u64 {
    let mut mask = 0u64;
    for lane in 0..8 {
        if byte_en & (1 << lane) != 0 {
            mask |= 0xFFu64 << (lane * 8);
        }
    }
    mask
}

/// A scripted OCP master: issues a fixed list of transactions in order and
/// collects the responses, validating them against expectations.
///
/// # Examples
///
/// ```
/// use xpipes_ocp::{MasterScript, SlaveMemory, Request};
///
/// # fn main() -> Result<(), xpipes_ocp::OcpError> {
/// let mut master = MasterScript::new();
/// master.push(Request::write(0x0, vec![1])?);
/// master.push(Request::read(0x0, 1)?);
///
/// let mut mem = SlaveMemory::new(0);
/// while let Some(req) = master.next_request() {
///     if let Some(resp) = mem.execute(&req) {
///         master.deliver(resp);
///     }
/// }
/// assert!(master.done());
/// assert_eq!(master.responses()[0].data(), &[1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct MasterScript {
    script: Vec<Request>,
    cursor: usize,
    pending: usize,
    responses: Vec<Response>,
    errors: Vec<OcpError>,
}

impl MasterScript {
    /// Creates an empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a transaction to the script.
    pub fn push(&mut self, req: Request) {
        self.script.push(req);
    }

    /// Next transaction to issue, advancing the cursor. `None` when the
    /// script is exhausted.
    pub fn next_request(&mut self) -> Option<Request> {
        let req = self.script.get(self.cursor)?.clone();
        self.cursor += 1;
        if req.expects_response() {
            self.pending += 1;
        }
        Some(req)
    }

    /// Delivers a response to the master.
    pub fn deliver(&mut self, resp: Response) {
        if self.pending == 0 {
            self.errors.push(OcpError::ResponseLengthMismatch {
                expected: 0,
                got: resp.data().len(),
            });
        } else {
            self.pending -= 1;
        }
        self.responses.push(resp);
    }

    /// All responses received so far, in arrival order.
    pub fn responses(&self) -> &[Response] {
        &self.responses
    }

    /// Responses with an error code.
    pub fn error_responses(&self) -> usize {
        self.responses
            .iter()
            .filter(|r| r.resp() != SResp::Dva)
            .count()
    }

    /// True when every scripted transaction has been issued and all
    /// expected responses have arrived.
    pub fn done(&self) -> bool {
        self.cursor == self.script.len() && self.pending == 0
    }

    /// Transactions not yet issued.
    pub fn remaining(&self) -> usize {
        self.script.len() - self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::RequestBuilder;
    use crate::types::BurstSeq;

    #[test]
    fn memory_write_then_read() {
        let mut mem = SlaveMemory::new(1);
        assert!(mem
            .execute(&Request::write(0x20, vec![7, 8]).unwrap())
            .is_none());
        let resp = mem.execute(&Request::read(0x20, 2).unwrap()).unwrap();
        assert_eq!(resp.data(), &[7, 8]);
        assert_eq!(mem.reads(), 1);
        assert_eq!(mem.writes(), 1);
    }

    #[test]
    fn memory_unwritten_reads_zero() {
        let mut mem = SlaveMemory::new(0);
        let resp = mem
            .execute(&Request::read(0xDEAD_BEE8, 1).unwrap())
            .unwrap();
        assert_eq!(resp.data(), &[0]);
    }

    #[test]
    fn memory_word_aligns_addresses() {
        let mut mem = SlaveMemory::new(0);
        mem.poke(0x101, 42); // aligns to 0x100
        assert_eq!(mem.peek(0x107), 42);
        assert_eq!(mem.peek(0x108), 0);
    }

    #[test]
    fn byte_enables_merge_partial_writes() {
        let mut mem = SlaveMemory::new(0);
        mem.poke(0x20, 0x1122_3344_5566_7788);
        // Write only the low two byte lanes.
        let req = RequestBuilder::new(MCmd::Write, 0x20)
            .data(vec![0xAAAA_BBBB_CCCC_DDDD])
            .byte_en(0b0000_0011)
            .build()
            .unwrap();
        mem.execute(&req);
        assert_eq!(mem.peek(0x20), 0x1122_3344_5566_DDDD);
        // Full enables replace the word.
        mem.execute(&Request::write(0x20, vec![5]).unwrap());
        assert_eq!(mem.peek(0x20), 5);
    }

    #[test]
    fn byte_mask_expansion() {
        assert_eq!(byte_mask(0xFF), u64::MAX);
        assert_eq!(byte_mask(0x00), 0);
        assert_eq!(byte_mask(0b1000_0001), 0xFF00_0000_0000_00FF);
    }

    #[test]
    fn memory_nonposted_write_acks() {
        let mut mem = SlaveMemory::new(0);
        let req = RequestBuilder::new(MCmd::WriteNonPost, 0x8)
            .data(vec![1])
            .build()
            .unwrap();
        let resp = mem.execute(&req).unwrap();
        assert_eq!(resp.resp(), SResp::Dva);
        assert!(resp.data().is_empty());
    }

    #[test]
    fn memory_wrap_burst_reads_in_wrap_order() {
        let mut mem = SlaveMemory::new(0);
        for i in 0..4u64 {
            mem.poke(0x100 + i * 8, 100 + i);
        }
        let req = RequestBuilder::new(MCmd::Read, 0x110)
            .burst_len(4)
            .burst_seq(BurstSeq::Wrap)
            .build()
            .unwrap();
        let resp = mem.execute(&req).unwrap();
        assert_eq!(resp.data(), &[102, 103, 100, 101]);
    }

    #[test]
    fn memory_state_export_import_roundtrip() {
        let mut mem = SlaveMemory::new(1);
        mem.execute(&Request::write(0x20, vec![7, 8]).unwrap());
        mem.execute(&Request::read(0x20, 1).unwrap());
        let words = mem.export_words();
        assert_eq!(words, vec![(0x20, 7), (0x28, 8)]);
        let mut copy = SlaveMemory::new(1);
        copy.import_state(words, mem.reads(), mem.writes());
        assert_eq!(copy.peek(0x20), 7);
        assert_eq!(copy.peek(0x28), 8);
        assert_eq!(copy.reads(), 1);
        assert_eq!(copy.writes(), 1);
        assert_eq!(copy.export_words(), mem.export_words());
    }

    #[test]
    fn script_runs_to_completion() {
        let mut master = MasterScript::new();
        master.push(Request::write(0x0, vec![5]).unwrap());
        master.push(Request::read(0x0, 1).unwrap());
        master.push(Request::read(0x8, 1).unwrap());
        let mut mem = SlaveMemory::new(0);
        while let Some(req) = master.next_request() {
            if let Some(resp) = mem.execute(&req) {
                master.deliver(resp);
            }
        }
        assert!(master.done());
        assert_eq!(master.remaining(), 0);
        assert_eq!(master.responses().len(), 2);
        assert_eq!(master.error_responses(), 0);
    }

    #[test]
    fn script_tracks_pending() {
        let mut master = MasterScript::new();
        master.push(Request::read(0, 1).unwrap());
        let req = master.next_request().unwrap();
        assert!(!master.done()); // response outstanding
        master.deliver(Response::for_request(&req, vec![0]).unwrap());
        assert!(master.done());
    }

    #[test]
    fn unexpected_response_recorded_as_error() {
        let mut master = MasterScript::new();
        master.deliver(Response::from_parts(
            SResp::Dva,
            vec![],
            Default::default(),
            0,
        ));
        assert!(!master.errors.is_empty());
    }
}
