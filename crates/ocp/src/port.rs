//! Cycle-level OCP ports: the request/response beat handshake.
//!
//! The transaction types in [`crate::transaction`] describe *what* moves;
//! these port FSMs describe *when*: a master presents one request beat
//! per cycle and holds it until the slave asserts `SCmdAccept`; the slave
//! presents response beats that the master accepts with `MRespAccept`.
//! The xpipes NI's OCP front end behaves exactly like [`SlavePort`]
//! toward the master core; these types let tests (and users embedding
//! real core models) drive the library at beat granularity.

use std::collections::VecDeque;

use crate::cores::SlaveMemory;
use crate::transaction::{ReqBeat, Request, RespBeat, Response};

/// Cycle-level master port: issues queued transactions beat by beat.
///
/// # Examples
///
/// ```
/// use xpipes_ocp::port::MasterPort;
/// use xpipes_ocp::Request;
///
/// # fn main() -> Result<(), xpipes_ocp::OcpError> {
/// let mut master = MasterPort::new();
/// master.enqueue(Request::write(0x0, vec![1, 2])?);
/// let beat = master.request_phase().expect("a beat is presented");
/// assert_eq!(beat.beat, 0);
/// master.request_accepted(); // slave asserted SCmdAccept
/// assert_eq!(master.request_phase().expect("next beat").beat, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct MasterPort {
    queue: VecDeque<Request>,
    current: Option<(Request, u32)>,
    responses: Vec<Response>,
    resp_assembly: Vec<RespBeat>,
    beats_issued: u64,
    outstanding: usize,
}

impl MasterPort {
    /// Creates an idle master port.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a transaction for issue.
    pub fn enqueue(&mut self, req: Request) {
        self.queue.push_back(req);
    }

    /// The request beat presented this cycle (`None` = `MCmd::Idle`).
    /// The same beat is presented every cycle until
    /// [`request_accepted`](Self::request_accepted) — OCP's hold rule.
    pub fn request_phase(&mut self) -> Option<ReqBeat> {
        if self.current.is_none() {
            let req = self.queue.pop_front()?;
            self.current = Some((req, 0));
        }
        let (req, beat) = self.current.as_ref().expect("just ensured");
        req.to_beats().nth(*beat as usize)
    }

    /// Advances past the currently presented beat (the slave asserted
    /// `SCmdAccept` this cycle).
    pub fn request_accepted(&mut self) {
        let Some((req, beat)) = self.current.as_mut() else {
            return;
        };
        self.beats_issued += 1;
        let total = req.to_beats().len() as u32;
        *beat += 1;
        if *beat >= total {
            if req.expects_response() {
                self.outstanding += 1;
            }
            self.current = None;
        }
    }

    /// Accepts a response beat (`MRespAccept` is always asserted — the
    /// master is never the bottleneck in this model). Whole responses are
    /// assembled and retrievable via [`take_response`](Self::take_response).
    pub fn response_phase(&mut self, beat: RespBeat) {
        let last = beat.last;
        self.resp_assembly.push(beat);
        if last {
            let beats = std::mem::take(&mut self.resp_assembly);
            let first = beats.first().expect("nonempty");
            let data: Vec<u64> = if beats.len() == 1 && beats[0].data == 0 {
                // A lone zero-data beat is a data-less acknowledgement.
                Vec::new()
            } else {
                beats.iter().map(|b| b.data).collect()
            };
            self.responses.push(Response::from_parts(
                first.resp,
                data,
                first.thread,
                first.tag,
            ));
            self.outstanding = self.outstanding.saturating_sub(1);
        }
    }

    /// A completed response, if any.
    pub fn take_response(&mut self) -> Option<Response> {
        if self.responses.is_empty() {
            None
        } else {
            Some(self.responses.remove(0))
        }
    }

    /// Transactions issued and awaiting responses.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Total request beats accepted by the slave.
    pub fn beats_issued(&self) -> u64 {
        self.beats_issued
    }

    /// True when nothing is queued, in flight or outstanding.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
            && self.current.is_none()
            && self.outstanding == 0
            && self.resp_assembly.is_empty()
    }
}

/// Cycle-level slave port fronting a [`SlaveMemory`]: accepts request
/// beats (with configurable acceptance stalling), executes completed
/// transactions, and presents response beats after the access latency.
#[derive(Debug, Clone)]
pub struct SlavePort {
    memory: SlaveMemory,
    /// Beats of the burst being assembled.
    assembly: Vec<ReqBeat>,
    /// (remaining latency, beats) queues awaiting presentation.
    pending: VecDeque<(u64, VecDeque<RespBeat>)>,
    /// Stall pattern: accept a beat only when `stall_counter == 0`.
    accept_every: u64,
    stall_counter: u64,
}

impl SlavePort {
    /// Creates a slave port over `memory` that accepts a beat every
    /// cycle.
    pub fn new(memory: SlaveMemory) -> Self {
        SlavePort {
            memory,
            assembly: Vec::new(),
            pending: VecDeque::new(),
            accept_every: 1,
            stall_counter: 0,
        }
    }

    /// Accepts only one beat every `n` cycles (models a slow slave;
    /// `n = 1` accepts every cycle).
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    #[must_use]
    pub fn with_accept_every(mut self, n: u64) -> Self {
        assert!(n > 0, "acceptance interval must be positive");
        self.accept_every = n;
        self
    }

    /// The backing memory.
    pub fn memory(&self) -> &SlaveMemory {
        &self.memory
    }

    /// One clock cycle: consider the master's presented beat (returning
    /// `SCmdAccept`), and produce at most one response beat.
    pub fn cycle(&mut self, presented: Option<ReqBeat>) -> (bool, Option<RespBeat>) {
        // Request side.
        let mut accept = false;
        if let Some(beat) = presented {
            if self.stall_counter == 0 {
                accept = true;
                self.stall_counter = self.accept_every - 1;
                let is_last = beat.last;
                self.assembly.push(beat);
                if is_last {
                    self.execute_assembled();
                }
            } else {
                self.stall_counter -= 1;
            }
        } else if self.stall_counter > 0 {
            self.stall_counter -= 1;
        }

        // Response side: age pending responses, present the head beat.
        for entry in &mut self.pending {
            entry.0 = entry.0.saturating_sub(1);
        }
        let mut beat_out = None;
        if let Some(front) = self.pending.front_mut() {
            if front.0 == 0 {
                beat_out = front.1.pop_front();
                if front.1.is_empty() {
                    self.pending.pop_front();
                }
            }
        }
        (accept, beat_out)
    }

    fn execute_assembled(&mut self) {
        let beats = std::mem::take(&mut self.assembly);
        let Some(req) = rebuild_request(&beats) else {
            return;
        };
        if let Some(resp) = self.memory.execute(&req) {
            self.pending
                .push_back((self.memory.latency().max(1), resp.to_beats().into()));
        }
    }

    /// True when no burst is half-assembled and no response is pending.
    pub fn is_idle(&self) -> bool {
        self.assembly.is_empty() && self.pending.is_empty()
    }
}

/// Reassembles a transaction from its accepted beats.
fn rebuild_request(beats: &[ReqBeat]) -> Option<Request> {
    let first = beats.first()?;
    let builder = crate::transaction::RequestBuilder::new(first.cmd, first.addr)
        .thread(first.thread)
        .tag(first.tag)
        .sideband(first.sideband)
        .byte_en(first.byte_en);
    let builder = if first.cmd.carries_data() {
        builder.data(beats.iter().map(|b| b.data).collect())
    } else {
        builder.burst_len(first.burst_len)
    };
    builder.build().ok()
}

/// Runs a master and slave port in lock-step for up to `max_cycles`;
/// returns the cycles consumed, or `None` if the system failed to drain.
pub fn run_connected(
    master: &mut MasterPort,
    slave: &mut SlavePort,
    max_cycles: u64,
) -> Option<u64> {
    for cycle in 0..max_cycles {
        if master.is_idle() && slave.is_idle() {
            return Some(cycle);
        }
        let presented = master.request_phase();
        let (accept, resp_beat) = slave.cycle(presented);
        if accept {
            master.request_accepted();
        }
        if let Some(beat) = resp_beat {
            master.response_phase(beat);
        }
    }
    (master.is_idle() && slave.is_idle()).then_some(max_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::RequestBuilder;
    use crate::types::{MCmd, SResp};

    #[test]
    fn write_then_read_through_ports() {
        let mut master = MasterPort::new();
        master.enqueue(Request::write(0x10, vec![7, 8]).unwrap());
        master.enqueue(Request::read(0x10, 2).unwrap());
        let mut slave = SlavePort::new(SlaveMemory::new(2));
        let cycles = run_connected(&mut master, &mut slave, 1000).expect("drains");
        assert!(cycles >= 4, "beats + latency take time: {cycles}");
        let resp = master.take_response().expect("read completed");
        assert_eq!(resp.resp(), SResp::Dva);
        assert_eq!(resp.data(), &[7, 8]);
        assert_eq!(master.beats_issued(), 3); // 2 write beats + 1 read beat
    }

    #[test]
    fn beat_held_until_accepted() {
        let mut master = MasterPort::new();
        master.enqueue(Request::write(0x0, vec![1, 2]).unwrap());
        let b1 = master.request_phase().expect("presented");
        let b2 = master.request_phase().expect("still presented");
        assert_eq!(b1, b2, "beat must hold without SCmdAccept");
        master.request_accepted();
        let b3 = master.request_phase().expect("next");
        assert_ne!(b1.beat, b3.beat);
    }

    #[test]
    fn slow_slave_stalls_master() {
        let mut fast_m = MasterPort::new();
        fast_m.enqueue(Request::write(0x0, vec![1, 2, 3, 4]).unwrap());
        let mut fast_s = SlavePort::new(SlaveMemory::new(1));
        let fast = run_connected(&mut fast_m, &mut fast_s, 1000).expect("drains");

        let mut slow_m = MasterPort::new();
        slow_m.enqueue(Request::write(0x0, vec![1, 2, 3, 4]).unwrap());
        let mut slow_s = SlavePort::new(SlaveMemory::new(1)).with_accept_every(3);
        let slow = run_connected(&mut slow_m, &mut slow_s, 1000).expect("drains");
        assert!(slow > fast, "fast {fast} slow {slow}");
        assert_eq!(slow_s.memory().peek(0x18), 4, "data still lands correctly");
    }

    #[test]
    fn nonposted_write_acknowledged() {
        let mut master = MasterPort::new();
        master.enqueue(
            RequestBuilder::new(MCmd::WriteNonPost, 0x8)
                .data(vec![5])
                .tag(9)
                .build()
                .unwrap(),
        );
        let mut slave = SlavePort::new(SlaveMemory::new(0));
        run_connected(&mut master, &mut slave, 1000).expect("drains");
        let resp = master.take_response().expect("ack");
        assert!(resp.data().is_empty());
        assert_eq!(resp.tag(), 9);
    }

    #[test]
    fn back_to_back_transactions_drain() {
        let mut master = MasterPort::new();
        for i in 0..10u64 {
            master.enqueue(Request::write(i * 8, vec![i]).unwrap());
            master.enqueue(Request::read(i * 8, 1).unwrap());
        }
        let mut slave = SlavePort::new(SlaveMemory::new(1));
        run_connected(&mut master, &mut slave, 10_000).expect("drains");
        let mut responses = 0;
        while let Some(resp) = master.take_response() {
            responses += 1;
            assert_eq!(resp.resp(), SResp::Dva);
        }
        assert_eq!(responses, 10);
        assert_eq!(master.outstanding(), 0);
    }

    #[test]
    fn response_latency_respected() {
        let mut master = MasterPort::new();
        master.enqueue(Request::read(0x0, 1).unwrap());
        let mut slave = SlavePort::new(SlaveMemory::new(10));
        let cycles = run_connected(&mut master, &mut slave, 1000).expect("drains");
        assert!(cycles >= 10, "latency must delay completion: {cycles}");
    }

    #[test]
    fn idle_master_presents_nothing() {
        let mut master = MasterPort::new();
        assert!(master.request_phase().is_none());
        assert!(master.is_idle());
        master.request_accepted(); // harmless no-op
        assert!(master.is_idle());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_accept_interval_panics() {
        let _ = SlavePort::new(SlaveMemory::new(0)).with_accept_every(0);
    }
}
