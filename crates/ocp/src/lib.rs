//! # xpipes-ocp — OCP 2.0 transaction protocol subset
//!
//! The xpipes Lite network interface is *transaction-centric*: its front end
//! speaks the Open Core Protocol to the attached IP core, and its back end
//! speaks the xpipes network protocol. This crate provides the OCP subset
//! the paper's NI supports:
//!
//! * read / write / non-posted write commands ([`MCmd`]),
//! * **efficient burst handling** (incrementing / wrapping / streaming
//!   bursts, one payload beat per datum — [`BurstSeq`], [`Request`]),
//! * independent request and response flows ([`Request`], [`Response`]),
//! * **threading extensions** ([`ThreadId`]) allowing multiple outstanding
//!   transactions,
//! * **sideband signals** such as interrupts and user flags ([`Sideband`]),
//! * a protocol-compliance [`monitor`] that checks beat streams against the
//!   OCP handshake and burst rules,
//! * reference behavioural cores: an OCP slave memory and a scripted master
//!   ([`cores`]).
//!
//! # Examples
//!
//! ```
//! use xpipes_ocp::{Request, MCmd, BurstSeq};
//!
//! # fn main() -> Result<(), xpipes_ocp::OcpError> {
//! let req = Request::write(0x1000, vec![1, 2, 3, 4])?; // 4-beat burst
//! assert_eq!(req.cmd(), MCmd::Write);
//! assert_eq!(req.burst_len(), 4);
//! assert_eq!(req.burst_seq(), BurstSeq::Incr);
//! let beats: Vec<_> = req.to_beats().collect();
//! assert!(beats[3].last);
//! # Ok(())
//! # }
//! ```

pub mod cores;
pub mod monitor;
pub mod port;
pub mod transaction;
pub mod types;

pub use cores::{MasterScript, SlaveMemory};
pub use monitor::{Monitor, Violation};
pub use port::{MasterPort, SlavePort};
pub use transaction::{OcpError, ReqBeat, Request, RespBeat, Response};
pub use types::{BurstSeq, MCmd, SResp, Sideband, ThreadId};
