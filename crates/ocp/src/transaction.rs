//! Transaction-level OCP: validated [`Request`]/[`Response`] objects and
//! their decomposition into per-cycle beats.
//!
//! The xpipes Lite NI packetizes *per transaction* (one ~50-bit header) and
//! *per burst beat* (one payload register each); this module is the
//! transaction side of that boundary.

use std::error::Error;
use std::fmt;

use crate::types::{BurstSeq, MCmd, SResp, Sideband, ThreadId};

/// Errors raised when constructing or validating OCP transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OcpError {
    /// Burst length zero or above the 8-bit header field limit (255).
    BadBurstLength(usize),
    /// A write without payload, or a read with payload.
    PayloadMismatch { cmd: MCmd, beats: usize },
    /// Command cannot start a transaction (e.g. `Idle`).
    BadCommand(MCmd),
    /// Thread id above [`ThreadId::MAX`].
    BadThread(u8),
    /// Response beat count differs from the request burst length.
    ResponseLengthMismatch { expected: u32, got: usize },
}

impl fmt::Display for OcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OcpError::BadBurstLength(n) => write!(f, "burst length {n} outside 1..=255"),
            OcpError::PayloadMismatch { cmd, beats } => {
                write!(f, "command {cmd} incompatible with {beats} payload beats")
            }
            OcpError::BadCommand(cmd) => write!(f, "command {cmd} cannot start a transaction"),
            OcpError::BadThread(t) => write!(f, "thread id {t} above maximum {}", ThreadId::MAX),
            OcpError::ResponseLengthMismatch { expected, got } => {
                write!(f, "response carries {got} beats, expected {expected}")
            }
        }
    }
}

impl Error for OcpError {}

/// A validated OCP request transaction.
///
/// Constructed through [`Request::read`], [`Request::write`] or the
/// [`RequestBuilder`]; invariants (burst length vs payload, thread range)
/// hold for every live value.
///
/// # Examples
///
/// ```
/// use xpipes_ocp::{Request, MCmd};
///
/// # fn main() -> Result<(), xpipes_ocp::OcpError> {
/// let rd = Request::read(0x2000, 8)?; // 8-beat burst read
/// assert_eq!(rd.cmd(), MCmd::Read);
/// assert!(rd.expects_response());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    cmd: MCmd,
    addr: u64,
    burst_len: u32,
    burst_seq: BurstSeq,
    data: Vec<u64>,
    byte_en: u8,
    thread: ThreadId,
    tag: u8,
    sideband: Sideband,
}

impl Request {
    /// Creates a single- or multi-beat burst read of `burst_len` beats.
    ///
    /// # Errors
    ///
    /// Returns [`OcpError::BadBurstLength`] for lengths outside `1..=255`.
    pub fn read(addr: u64, burst_len: u32) -> Result<Self, OcpError> {
        RequestBuilder::new(MCmd::Read, addr)
            .burst_len(burst_len)
            .build()
    }

    /// Creates a posted write burst carrying `data` (one beat per element).
    ///
    /// # Errors
    ///
    /// Returns [`OcpError::BadBurstLength`] when `data` is empty or longer
    /// than 255 beats.
    pub fn write(addr: u64, data: Vec<u64>) -> Result<Self, OcpError> {
        RequestBuilder::new(MCmd::Write, addr).data(data).build()
    }

    /// Master command.
    pub fn cmd(&self) -> MCmd {
        self.cmd
    }

    /// Transaction base address (`MAddr`).
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Number of burst beats.
    pub fn burst_len(&self) -> u32 {
        self.burst_len
    }

    /// Burst address sequence.
    pub fn burst_seq(&self) -> BurstSeq {
        self.burst_seq
    }

    /// Write payload (empty for reads).
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// Byte enables applied to every beat.
    pub fn byte_en(&self) -> u8 {
        self.byte_en
    }

    /// Thread id.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Initiator-chosen transaction tag (matches responses to requests).
    pub fn tag(&self) -> u8 {
        self.tag
    }

    /// Sideband signals travelling with the request.
    pub fn sideband(&self) -> Sideband {
        self.sideband
    }

    /// True when the target must send a [`Response`].
    pub fn expects_response(&self) -> bool {
        self.cmd.expects_response()
    }

    /// Decomposes the transaction into per-cycle request beats, the form
    /// in which it crosses the OCP interface.
    pub fn to_beats(&self) -> ToBeats<'_> {
        ToBeats { req: self, beat: 0 }
    }
}

/// Iterator over the request beats of a [`Request`]; see
/// [`Request::to_beats`].
#[derive(Debug, Clone)]
pub struct ToBeats<'a> {
    req: &'a Request,
    beat: u32,
}

impl Iterator for ToBeats<'_> {
    type Item = ReqBeat;

    fn next(&mut self) -> Option<ReqBeat> {
        let r = self.req;
        // Reads present a single address/command beat; writes one per datum.
        let total = if r.cmd.carries_data() { r.burst_len } else { 1 };
        if self.beat >= total {
            return None;
        }
        let beat = self.beat;
        self.beat += 1;
        Some(ReqBeat {
            cmd: r.cmd,
            addr: r.burst_seq.beat_addr(r.addr, beat, r.burst_len, 8),
            data: r.data.get(beat as usize).copied().unwrap_or(0),
            byte_en: r.byte_en,
            burst_len: r.burst_len,
            beat,
            last: beat + 1 == total,
            thread: r.thread,
            tag: r.tag,
            sideband: r.sideband,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let total = if self.req.cmd.carries_data() {
            self.req.burst_len
        } else {
            1
        };
        let rem = total.saturating_sub(self.beat) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for ToBeats<'_> {}

/// One request-phase cycle on the OCP interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqBeat {
    /// Command (constant across a burst).
    pub cmd: MCmd,
    /// Beat address, derived from the burst sequence.
    pub addr: u64,
    /// Write data for this beat (0 for reads).
    pub data: u64,
    /// Byte enables.
    pub byte_en: u8,
    /// Declared burst length.
    pub burst_len: u32,
    /// Beat index within the burst.
    pub beat: u32,
    /// True on the final beat.
    pub last: bool,
    /// Thread id.
    pub thread: ThreadId,
    /// Transaction tag.
    pub tag: u8,
    /// Sideband signals.
    pub sideband: Sideband,
}

/// One response-phase cycle on the OCP interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RespBeat {
    /// Response code.
    pub resp: SResp,
    /// Read data for this beat.
    pub data: u64,
    /// Beat index.
    pub beat: u32,
    /// True on the final beat.
    pub last: bool,
    /// Thread id.
    pub thread: ThreadId,
    /// Transaction tag (copied from the request).
    pub tag: u8,
}

/// A validated OCP response transaction.
///
/// # Examples
///
/// ```
/// use xpipes_ocp::{Request, Response, SResp};
///
/// # fn main() -> Result<(), xpipes_ocp::OcpError> {
/// let req = Request::read(0x0, 2)?;
/// let resp = Response::for_request(&req, vec![11, 22])?;
/// assert_eq!(resp.resp(), SResp::Dva);
/// assert_eq!(resp.data(), &[11, 22]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    resp: SResp,
    data: Vec<u64>,
    thread: ThreadId,
    tag: u8,
}

impl Response {
    /// Builds a `Dva` response matched to `req`, carrying `data` (which
    /// must contain one beat per requested beat for reads, and must be
    /// empty for non-posted writes).
    ///
    /// # Errors
    ///
    /// Returns [`OcpError::ResponseLengthMismatch`] when the beat count is
    /// wrong.
    pub fn for_request(req: &Request, data: Vec<u64>) -> Result<Self, OcpError> {
        let expected = match req.cmd() {
            MCmd::Read | MCmd::ReadEx => req.burst_len(),
            _ => 0,
        };
        if data.len() != expected as usize {
            return Err(OcpError::ResponseLengthMismatch {
                expected,
                got: data.len(),
            });
        }
        Ok(Response {
            resp: SResp::Dva,
            data,
            thread: req.thread(),
            tag: req.tag(),
        })
    }

    /// Builds an error response matched to `req`.
    pub fn error_for(req: &Request) -> Self {
        Response {
            resp: SResp::Err,
            data: Vec::new(),
            thread: req.thread(),
            tag: req.tag(),
        }
    }

    /// Reassembles a response from raw parts (used by the NI depacketizer).
    pub fn from_parts(resp: SResp, data: Vec<u64>, thread: ThreadId, tag: u8) -> Self {
        Response {
            resp,
            data,
            thread,
            tag,
        }
    }

    /// Response code.
    pub fn resp(&self) -> SResp {
        self.resp
    }

    /// Read payload.
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// Thread id.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Transaction tag.
    pub fn tag(&self) -> u8 {
        self.tag
    }

    /// Decomposes into per-cycle response beats (at least one beat even
    /// for data-less acknowledgements).
    pub fn to_beats(&self) -> Vec<RespBeat> {
        if self.data.is_empty() {
            return vec![RespBeat {
                resp: self.resp,
                data: 0,
                beat: 0,
                last: true,
                thread: self.thread,
                tag: self.tag,
            }];
        }
        let n = self.data.len();
        self.data
            .iter()
            .enumerate()
            .map(|(i, &d)| RespBeat {
                resp: self.resp,
                data: d,
                beat: i as u32,
                last: i + 1 == n,
                thread: self.thread,
                tag: self.tag,
            })
            .collect()
    }
}

/// Builder for [`Request`] values with full parameter control.
///
/// # Examples
///
/// ```
/// use xpipes_ocp::{MCmd, BurstSeq, ThreadId};
/// use xpipes_ocp::transaction::RequestBuilder;
///
/// # fn main() -> Result<(), xpipes_ocp::OcpError> {
/// let req = RequestBuilder::new(MCmd::WriteNonPost, 0x400)
///     .data(vec![7, 8])
///     .burst_seq(BurstSeq::Wrap)
///     .thread(ThreadId(2))
///     .tag(5)
///     .build()?;
/// assert_eq!(req.burst_len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RequestBuilder {
    cmd: MCmd,
    addr: u64,
    burst_len: Option<u32>,
    burst_seq: BurstSeq,
    data: Vec<u64>,
    byte_en: u8,
    thread: ThreadId,
    tag: u8,
    sideband: Sideband,
}

impl RequestBuilder {
    /// Starts a builder for command `cmd` at address `addr`.
    pub fn new(cmd: MCmd, addr: u64) -> Self {
        RequestBuilder {
            cmd,
            addr,
            burst_len: None,
            burst_seq: BurstSeq::Incr,
            data: Vec::new(),
            byte_en: 0xFF,
            thread: ThreadId(0),
            tag: 0,
            sideband: Sideband::NONE,
        }
    }

    /// Sets the burst length (reads; writes infer it from `data`).
    #[must_use]
    pub fn burst_len(mut self, len: u32) -> Self {
        self.burst_len = Some(len);
        self
    }

    /// Sets the burst address sequence.
    #[must_use]
    pub fn burst_seq(mut self, seq: BurstSeq) -> Self {
        self.burst_seq = seq;
        self
    }

    /// Sets the write payload (one beat per element).
    #[must_use]
    pub fn data(mut self, data: Vec<u64>) -> Self {
        self.data = data;
        self
    }

    /// Sets byte enables.
    #[must_use]
    pub fn byte_en(mut self, en: u8) -> Self {
        self.byte_en = en;
        self
    }

    /// Sets the thread id.
    #[must_use]
    pub fn thread(mut self, thread: ThreadId) -> Self {
        self.thread = thread;
        self
    }

    /// Sets the transaction tag.
    #[must_use]
    pub fn tag(mut self, tag: u8) -> Self {
        self.tag = tag;
        self
    }

    /// Sets sideband signals.
    #[must_use]
    pub fn sideband(mut self, sb: Sideband) -> Self {
        self.sideband = sb;
        self
    }

    /// Validates and builds the request.
    ///
    /// # Errors
    ///
    /// * [`OcpError::BadCommand`] — `Idle` cannot start a transaction.
    /// * [`OcpError::PayloadMismatch`] — payload presence must match the
    ///   command's data direction.
    /// * [`OcpError::BadBurstLength`] — length outside `1..=255`.
    /// * [`OcpError::BadThread`] — thread id above [`ThreadId::MAX`].
    pub fn build(self) -> Result<Request, OcpError> {
        if self.cmd == MCmd::Idle {
            return Err(OcpError::BadCommand(self.cmd));
        }
        if self.thread.0 > ThreadId::MAX {
            return Err(OcpError::BadThread(self.thread.0));
        }
        let burst_len = if self.cmd.carries_data() {
            if self.data.is_empty() {
                return Err(OcpError::PayloadMismatch {
                    cmd: self.cmd,
                    beats: 0,
                });
            }
            if let Some(len) = self.burst_len {
                if len as usize != self.data.len() {
                    return Err(OcpError::BadBurstLength(len as usize));
                }
            }
            self.data.len() as u32
        } else {
            if !self.data.is_empty() {
                return Err(OcpError::PayloadMismatch {
                    cmd: self.cmd,
                    beats: self.data.len(),
                });
            }
            self.burst_len.unwrap_or(1)
        };
        if burst_len == 0 || burst_len > 255 {
            return Err(OcpError::BadBurstLength(burst_len as usize));
        }
        Ok(Request {
            cmd: self.cmd,
            addr: self.addr,
            burst_len,
            burst_seq: self.burst_seq,
            data: self.data,
            byte_en: self.byte_en,
            thread: self.thread,
            tag: self.tag,
            sideband: self.sideband,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_request_validates() {
        let req = Request::read(0x100, 4).expect("valid read");
        assert_eq!(req.burst_len(), 4);
        assert!(req.expects_response());
        assert!(req.data().is_empty());
    }

    #[test]
    fn write_request_infers_burst_len() {
        let req = Request::write(0x0, vec![1, 2, 3]).expect("valid write");
        assert_eq!(req.burst_len(), 3);
        assert!(!req.expects_response());
    }

    #[test]
    fn zero_burst_rejected() {
        assert_eq!(Request::read(0, 0), Err(OcpError::BadBurstLength(0)));
        assert!(matches!(
            Request::write(0, vec![]),
            Err(OcpError::PayloadMismatch { .. })
        ));
    }

    #[test]
    fn oversize_burst_rejected() {
        assert_eq!(Request::read(0, 256), Err(OcpError::BadBurstLength(256)));
        assert!(Request::read(0, 255).is_ok());
    }

    #[test]
    fn idle_cannot_build() {
        let err = RequestBuilder::new(MCmd::Idle, 0).build().unwrap_err();
        assert_eq!(err, OcpError::BadCommand(MCmd::Idle));
    }

    #[test]
    fn read_with_payload_rejected() {
        let err = RequestBuilder::new(MCmd::Read, 0)
            .data(vec![1])
            .build()
            .unwrap_err();
        assert!(matches!(err, OcpError::PayloadMismatch { .. }));
    }

    #[test]
    fn thread_limit_enforced() {
        let err = RequestBuilder::new(MCmd::Read, 0)
            .thread(ThreadId(16))
            .build()
            .unwrap_err();
        assert_eq!(err, OcpError::BadThread(16));
        assert!(RequestBuilder::new(MCmd::Read, 0)
            .thread(ThreadId(15))
            .build()
            .is_ok());
    }

    #[test]
    fn explicit_len_must_match_payload() {
        let err = RequestBuilder::new(MCmd::Write, 0)
            .data(vec![1, 2])
            .burst_len(3)
            .build()
            .unwrap_err();
        assert_eq!(err, OcpError::BadBurstLength(3));
    }

    #[test]
    fn write_beats_carry_data_and_addresses() {
        let req = Request::write(0x100, vec![10, 20]).unwrap();
        let beats: Vec<_> = req.to_beats().collect();
        assert_eq!(beats.len(), 2);
        assert_eq!(beats[0].data, 10);
        assert_eq!(beats[0].addr, 0x100);
        assert_eq!(beats[1].data, 20);
        assert_eq!(beats[1].addr, 0x108);
        assert!(!beats[0].last);
        assert!(beats[1].last);
    }

    #[test]
    fn read_is_single_request_beat() {
        let req = Request::read(0x40, 8).unwrap();
        let beats: Vec<_> = req.to_beats().collect();
        assert_eq!(beats.len(), 1);
        assert_eq!(beats[0].burst_len, 8);
        assert!(beats[0].last);
    }

    #[test]
    fn to_beats_exact_size() {
        let req = Request::write(0, vec![0; 5]).unwrap();
        let it = req.to_beats();
        assert_eq!(it.len(), 5);
    }

    #[test]
    fn response_matching() {
        let req = Request::read(0, 2).unwrap();
        let ok = Response::for_request(&req, vec![5, 6]).unwrap();
        assert_eq!(ok.data(), &[5, 6]);
        let err = Response::for_request(&req, vec![5]).unwrap_err();
        assert_eq!(
            err,
            OcpError::ResponseLengthMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn nonposted_write_ack_has_no_data() {
        let req = RequestBuilder::new(MCmd::WriteNonPost, 0)
            .data(vec![1])
            .build()
            .unwrap();
        let resp = Response::for_request(&req, vec![]).unwrap();
        let beats = resp.to_beats();
        assert_eq!(beats.len(), 1);
        assert!(beats[0].last);
        assert_eq!(beats[0].data, 0);
    }

    #[test]
    fn error_response_propagates_tag_thread() {
        let req = RequestBuilder::new(MCmd::Read, 0)
            .thread(ThreadId(3))
            .tag(9)
            .build()
            .unwrap();
        let resp = Response::error_for(&req);
        assert_eq!(resp.resp(), SResp::Err);
        assert_eq!(resp.thread(), ThreadId(3));
        assert_eq!(resp.tag(), 9);
    }

    #[test]
    fn response_beats_mark_last() {
        let resp = Response::from_parts(SResp::Dva, vec![1, 2, 3], ThreadId(0), 0);
        let beats = resp.to_beats();
        assert_eq!(beats.iter().filter(|b| b.last).count(), 1);
        assert!(beats[2].last);
    }

    #[test]
    fn error_display_messages() {
        assert_eq!(
            OcpError::BadBurstLength(0).to_string(),
            "burst length 0 outside 1..=255"
        );
        assert!(OcpError::BadThread(99).to_string().contains("99"));
    }
}
