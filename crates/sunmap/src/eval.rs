//! Candidate evaluation: synthesis estimation + simulated performance.
//!
//! For a candidate specification this runs the area/power library on
//! every component (one synthesis per distinct switch radix plus the two
//! NIs), consults the floorplanner for wire derating, and replays the
//! application traffic on the cycle-accurate simulator — producing the
//! numbers the SunMap selection stage compares (and that experiment E7
//! reports).

use std::collections::HashMap;
use std::fmt;

use xpipes::config::{NiConfig, SwitchConfig};
use xpipes::noc::Noc;
use xpipes::XpipesError;
use xpipes_synth::components::{initiator_ni_netlist, switch_netlist, target_ni_netlist};
use xpipes_synth::report::{synthesize, synthesize_max_speed, SynthError};
use xpipes_topology::spec::NocSpec;
use xpipes_topology::{NiKind, TaskGraph};
use xpipes_traffic::appdriven::AppTraffic;

use crate::codesign;
use crate::floorplan::floorplan;

/// Evaluation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalConfig {
    /// Clock target for component synthesis, in MHz.
    pub target_mhz: f64,
    /// Injection-rate scale: packets/cycle per MB/s of flow bandwidth.
    pub rate_per_mbps: f64,
    /// Write burst length for application traffic.
    pub burst: u32,
    /// Warm-up cycles before measuring.
    pub warmup: u64,
    /// Measured cycles.
    pub window: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            target_mhz: 1000.0,
            rate_per_mbps: 2.0e-5,
            burst: 4,
            warmup: 1_000,
            window: 8_000,
            seed: 0xD5EC7,
        }
    }
}

/// Evaluation results for one candidate topology.
#[derive(Debug, Clone)]
pub struct CandidateReport {
    /// Candidate name.
    pub name: String,
    /// Total component area in mm².
    pub area_mm2: f64,
    /// Operating frequency in MHz: the slowest component's fmax, derated
    /// by the floorplan wire limit and capped at the synthesis target.
    pub fmax_mhz: f64,
    /// Total power at the operating frequency, in mW (the library's
    /// static estimate at its assumed activities).
    pub power_mw: f64,
    /// Simulation-driven power in mW: dynamic power rescaled by the
    /// activity actually observed in the traffic replay (leakage and
    /// clock tree unchanged). Always ≤ `power_mw` for workloads lighter
    /// than the library's activity assumption.
    pub active_power_mw: f64,
    /// Mean transaction latency in cycles (application traffic).
    pub avg_latency_cycles: f64,
    /// Mean transaction latency in nanoseconds (cycles / fmax).
    pub avg_latency_ns: f64,
    /// Accepted application throughput in packets per cycle.
    pub accepted_packets_per_cycle: f64,
    /// Accepted throughput normalised by clock, packets per microsecond.
    pub accepted_packets_per_us: f64,
    /// Link-load imbalance (max/mean) from routing analysis.
    pub load_imbalance: f64,
    /// Number of switches.
    pub switches: usize,
    /// Number of NIs.
    pub nis: usize,
}

impl fmt::Display for CandidateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3} mm², {:.0} MHz, {:.1} mW, {:.1} cyc ({:.1} ns) latency, {:.3} pkt/us",
            self.name,
            self.area_mm2,
            self.fmax_mhz,
            self.power_mw,
            self.avg_latency_cycles,
            self.avg_latency_ns,
            self.accepted_packets_per_us
        )
    }
}

/// Errors from candidate evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Synthesis failed for a component.
    Synth(SynthError),
    /// Simulation or specification failure.
    Xpipes(XpipesError),
    /// A bundled benchmark application graph failed to build.
    App(crate::apps::AppBuildError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Synth(e) => write!(f, "synthesis: {e}"),
            EvalError::Xpipes(e) => write!(f, "network: {e}"),
            EvalError::App(e) => write!(f, "application: {e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<SynthError> for EvalError {
    fn from(e: SynthError) -> Self {
        EvalError::Synth(e)
    }
}

impl From<XpipesError> for EvalError {
    fn from(e: XpipesError) -> Self {
        EvalError::Xpipes(e)
    }
}

impl From<crate::apps::AppBuildError> for EvalError {
    fn from(e: crate::apps::AppBuildError) -> Self {
        EvalError::App(e)
    }
}

/// Synthesizes a component at the target clock, falling back to its
/// maximum achievable speed when the target is out of reach.
fn synth_or_best(
    netlist: &xpipes_synth::Netlist,
    target_mhz: f64,
) -> Result<xpipes_synth::SynthReport, SynthError> {
    match synthesize(netlist, target_mhz) {
        Ok(r) => Ok(r),
        Err(SynthError::TargetUnreachable { .. }) => synthesize_max_speed(netlist),
        Err(e) => Err(e),
    }
}

/// Evaluates one candidate specification against its application.
///
/// # Errors
///
/// Propagates synthesis and simulation failures; a candidate whose
/// specification does not validate is an error, not a silent skip.
pub fn evaluate(
    name: &str,
    spec: &NocSpec,
    graph: &TaskGraph,
    config: &EvalConfig,
) -> Result<CandidateReport, EvalError> {
    spec.validate().map_err(XpipesError::from)?;

    // --- Synthesis side: one run per distinct (radix, queue depth)
    // switch configuration + both NIs.
    let mut switch_cache: HashMap<(usize, u32), xpipes_synth::SynthReport> = HashMap::new();
    let mut area = 0.0;
    let mut power = 0.0;
    let mut dynamic_power = 0.0;
    let mut fmax: f64 = f64::INFINITY;
    for s in spec.topology.switches() {
        let radix = spec.topology.switch_degree(s).max(2);
        let depth = spec.queue_depth_of(s);
        let r = match switch_cache.entry((radix, depth)) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let mut cfg = SwitchConfig::new(radix, radix, spec.flit_width);
                cfg.output_queue_depth = depth as usize;
                e.insert(synth_or_best(&switch_netlist(&cfg), config.target_mhz)?)
            }
        };
        area += r.area_mm2;
        power += r.power_mw;
        dynamic_power += r.dynamic_mw;
        fmax = fmax.min(r.fmax_mhz);
    }
    let ni_cfg = NiConfig::new(spec.flit_width);
    let ini_report = synth_or_best(&initiator_ni_netlist(&ni_cfg), config.target_mhz)?;
    let tgt_report = synth_or_best(&target_ni_netlist(&ni_cfg), config.target_mhz)?;
    for ni in spec.topology.nis() {
        let r = match ni.kind {
            NiKind::Initiator => &ini_report,
            NiKind::Target => &tgt_report,
        };
        area += r.area_mm2;
        power += r.power_mw;
        dynamic_power += r.dynamic_mw;
        fmax = fmax.min(r.fmax_mhz);
    }

    // --- Floorplan derating (with greedy placement improvement, which
    // matters for custom topologies whose raster start is poor).
    let plan = crate::floorplan::optimize(spec, &floorplan(spec));
    let stages = spec
        .topology
        .links()
        .iter()
        .map(|l| l.pipeline_stages)
        .max()
        .unwrap_or(1);
    let operating_mhz = plan.derate(fmax, stages).min(config.target_mhz);

    // --- Performance side: replay the application traffic.
    let mut noc = Noc::with_seed(spec, config.seed)?;
    let mut app = AppTraffic::new(spec, graph, config.rate_per_mbps, config.burst, config.seed)?;
    app.run(&mut noc, config.warmup);
    let before = noc.stats();
    app.run(&mut noc, config.window);
    let after = noc.stats();
    let delivered = after.packets_delivered - before.packets_delivered;
    let latency_cycles = after.transaction_latency.mean().max(
        // Pure-write workloads have no round trips; fall back to the
        // one-way request latency.
        after.request_latency.mean(),
    );

    // --- Simulation-driven power: rescale the dynamic share by observed
    // flit activity. The library's power assumes roughly one flit moving
    // per port-pair per cycle at its annotated activities; utilization is
    // measured as crossbar traversals per switch-cycle.
    let total_switch_cycles: f64 = spec.topology.switch_count() as f64 * config.window as f64;
    let flits_in_window = (after.flits_routed - before.flits_routed) as f64;
    let utilization = (flits_in_window / total_switch_cycles.max(1.0)).clamp(0.0, 1.0);
    let static_power = power - dynamic_power;
    let active_power_mw = static_power + dynamic_power * utilization;

    // --- Routing balance.
    let imbalance = codesign::load_report(&codesign::link_loads(spec, graph)?).imbalance;

    let accepted_per_cycle = delivered as f64 / config.window as f64;
    Ok(CandidateReport {
        name: name.to_string(),
        area_mm2: area,
        fmax_mhz: operating_mhz,
        power_mw: power,
        active_power_mw,
        avg_latency_cycles: latency_cycles,
        avg_latency_ns: latency_cycles / operating_mhz * 1000.0,
        accepted_packets_per_cycle: accepted_per_cycle,
        accepted_packets_per_us: accepted_per_cycle * operating_mhz,
        load_imbalance: imbalance,
        switches: spec.topology.switch_count(),
        nis: spec.topology.nis().len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use crate::mapping::{build_spec, map_to_mesh};

    fn quick_config() -> EvalConfig {
        EvalConfig {
            warmup: 200,
            window: 1500,
            ..EvalConfig::default()
        }
    }

    #[test]
    fn evaluates_vopd_on_mesh() {
        let g = apps::vopd().expect("app builds");
        let m = map_to_mesh(&g, 3, 4, 1, 3).unwrap();
        let spec = build_spec(&g, &m, 32).unwrap();
        let r = evaluate("vopd-3x4", &spec, &g, &quick_config()).unwrap();
        assert!(r.area_mm2 > 0.5, "{}", r.area_mm2);
        assert!(r.fmax_mhz > 500.0 && r.fmax_mhz <= 1000.0, "{}", r.fmax_mhz);
        assert!(r.power_mw > 10.0);
        assert!(r.avg_latency_cycles > 0.0);
        assert!(r.avg_latency_ns > 0.0);
        assert!(r.switches == 12 && r.nis == 24);
        assert!(r.load_imbalance >= 1.0);
        assert!(r.to_string().contains("mm²"));
    }

    #[test]
    fn active_power_tracks_load() {
        let g = apps::vopd().expect("app builds");
        let m = map_to_mesh(&g, 3, 4, 1, 3).unwrap();
        let spec = build_spec(&g, &m, 32).unwrap();
        let mut light = quick_config();
        light.rate_per_mbps = 5.0e-6;
        let mut heavy = quick_config();
        heavy.rate_per_mbps = 8.0e-5;
        let r_light = evaluate("light", &spec, &g, &light).unwrap();
        let r_heavy = evaluate("heavy", &spec, &g, &heavy).unwrap();
        // Static estimate is workload independent; active power is not.
        assert_eq!(r_light.power_mw, r_heavy.power_mw);
        assert!(r_light.active_power_mw < r_heavy.active_power_mw);
        assert!(r_light.active_power_mw <= r_light.power_mw);
        assert!(r_light.active_power_mw > 0.0);
    }

    #[test]
    fn larger_flit_width_costs_area() {
        let g = apps::mwd().expect("app builds");
        let m = map_to_mesh(&g, 3, 4, 1, 3).unwrap();
        let s32 = build_spec(&g, &m, 32).unwrap();
        let s64 = build_spec(&g, &m, 64).unwrap();
        let cfg = quick_config();
        let r32 = evaluate("w32", &s32, &g, &cfg).unwrap();
        let r64 = evaluate("w64", &s64, &g, &cfg).unwrap();
        assert!(r64.area_mm2 > r32.area_mm2 * 1.3);
    }

    #[test]
    fn invalid_spec_is_error() {
        let g = apps::mwd().expect("app builds");
        let m = map_to_mesh(&g, 3, 4, 1, 3).unwrap();
        let mut spec = build_spec(&g, &m, 32).unwrap();
        spec.flit_width = 1; // invalid
        assert!(evaluate("bad", &spec, &g, &quick_config()).is_err());
    }
}
