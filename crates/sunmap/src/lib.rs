//! # xpipes-sunmap — the SunMap design flow
//!
//! The paper's NoC synthesis flow: an application task graph is **mapped
//! onto candidate topologies** using area/power libraries and a
//! floorplanner, the best **topology is selected**, and the **routing
//! function is co-designed** — then the xpipesCompiler instantiates the
//! winner. This crate reproduces that flow on top of the other workspace
//! crates:
//!
//! * [`apps`] — benchmark task graphs (MPEG-4 decoder, VOPD, MWD, and the
//!   D26 media SoC with 8 processors + 11 slaves from the mesh case
//!   study),
//! * [`mapping`] — greedy + simulated-annealing placement of cores onto
//!   mesh slots, and specification construction from a mapping,
//! * [`floorplan`] — grid placement, link-length estimation and
//!   wire-delay frequency derating,
//! * [`eval`] — candidate evaluation: synthesis reports for every
//!   component (area/fmax/power) plus cycle-accurate application traffic
//!   simulation (latency/throughput),
//! * [`selection`] — candidate generation (mesh/torus variants + a custom
//!   application-specific topology) and scored selection,
//! * [`codesign`] — routing-function analysis: per-link bandwidth loads
//!   and balance metrics,
//! * [`pareto`] — Pareto-front utilities over candidate reports.
//!
//! # Examples
//!
//! ```no_run
//! use xpipes_sunmap::{apps, selection};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let app = apps::mpeg4_decoder()?;
//! let outcome = selection::select(&app, &selection::SelectionConfig::default())?;
//! println!("winner: {}", outcome.winner().name);
//! # Ok(())
//! # }
//! ```

pub mod apps;
pub mod codesign;
pub mod eval;
pub mod floorplan;
pub mod mapping;
pub mod pareto;
pub mod selection;

pub use eval::CandidateReport;
pub use mapping::{build_spec, map_to_mesh, MeshMapping};
