//! Floorplanning: placement, link lengths and wire-delay derating.
//!
//! The SunMap flow consults a floorplanner when evaluating candidate
//! topologies: component macros are placed on a grid, link lengths follow
//! from placement, and long wires derate the achievable clock (at 130 nm
//! a repeated global wire costs roughly 0.5 ns/mm — a link much longer
//! than a tile pitch caps the clock below the component fmax).

use std::collections::HashMap;

use xpipes_topology::spec::NocSpec;
use xpipes_topology::SwitchId;

/// Wire delay per millimetre for repeated global wires at 130 nm, in ps.
pub const WIRE_PS_PER_MM: f64 = 500.0;

/// Tile pitch assumed for one mesh slot, in millimetres.
pub const TILE_PITCH_MM: f64 = 1.0;

/// A computed floorplan.
#[derive(Debug, Clone)]
pub struct Floorplan {
    /// Switch position in millimetres.
    pub position_mm: HashMap<SwitchId, (f64, f64)>,
    /// Longest link in millimetres.
    pub max_link_mm: f64,
    /// Total half-perimeter wire length across links, in millimetres.
    pub total_wire_mm: f64,
}

impl Floorplan {
    /// The highest clock the longest wire supports within one cycle per
    /// pipeline stage, in MHz.
    pub fn wire_limited_fmax_mhz(&self, pipeline_stages_per_link: u32) -> f64 {
        if self.max_link_mm <= 0.0 {
            return f64::INFINITY;
        }
        let ps = self.max_link_mm * WIRE_PS_PER_MM / pipeline_stages_per_link.max(1) as f64;
        1.0e6 / ps
    }

    /// Derates a component fmax by the wire limit.
    pub fn derate(&self, component_fmax_mhz: f64, pipeline_stages_per_link: u32) -> f64 {
        component_fmax_mhz.min(self.wire_limited_fmax_mhz(pipeline_stages_per_link))
    }
}

/// Places the switches of `spec` and measures its links.
///
/// Mesh-built topologies carry grid names (`sw_x_y`) and are placed at
/// their grid coordinates; other topologies fall back to a square
/// raster in switch-id order (the classic quick floorplan estimate).
/// Link lengths are written back into the returned plan (half-perimeter
/// Manhattan estimate).
pub fn floorplan(spec: &NocSpec) -> Floorplan {
    let topo = &spec.topology;
    let n = topo.switch_count().max(1);
    let side = (n as f64).sqrt().ceil() as usize;
    let mut position_mm = HashMap::new();
    for s in topo.switches() {
        let name = topo.switch_name(s).unwrap_or("");
        let coord = parse_grid_name(name).unwrap_or((s.0 % side, s.0 / side));
        position_mm.insert(
            s,
            (
                coord.0 as f64 * TILE_PITCH_MM,
                coord.1 as f64 * TILE_PITCH_MM,
            ),
        );
    }
    let mut max_link: f64 = 0.0;
    let mut total: f64 = 0.0;
    for l in topo.links() {
        let (ax, ay) = position_mm[&l.from];
        let (bx, by) = position_mm[&l.to];
        let len = (ax - bx).abs() + (ay - by).abs();
        max_link = max_link.max(len);
        total += len;
    }
    Floorplan {
        position_mm,
        max_link_mm: max_link,
        total_wire_mm: total,
    }
}

fn parse_grid_name(name: &str) -> Option<(usize, usize)> {
    let rest = name.strip_prefix("sw_")?;
    let (x, y) = rest.split_once('_')?;
    Some((x.parse().ok()?, y.parse().ok()?))
}

/// Improves a floorplan by greedy pairwise position swaps: repeatedly
/// exchange two switches when it shortens total wire length. Converges
/// quickly for the small (≤ tens of switches) NoCs of this flow and
/// tightens custom topologies whose raster placement scatters
/// communicating clusters.
pub fn optimize(spec: &NocSpec, plan: &Floorplan) -> Floorplan {
    let topo = &spec.topology;
    let mut position = plan.position_mm.clone();
    let switches: Vec<SwitchId> = topo.switches().collect();
    let wire = |pos: &HashMap<SwitchId, (f64, f64)>| -> (f64, f64) {
        let mut total = 0.0;
        let mut max: f64 = 0.0;
        for l in topo.links() {
            let (ax, ay) = pos[&l.from];
            let (bx, by) = pos[&l.to];
            let len = (ax - bx).abs() + (ay - by).abs();
            total += len;
            max = max.max(len);
        }
        (total, max)
    };
    let (mut best_total, _) = wire(&position);
    // Greedy passes: O(n²) swaps per pass, few passes needed.
    for _pass in 0..8 {
        let mut improved = false;
        for i in 0..switches.len() {
            for j in i + 1..switches.len() {
                let (a, b) = (switches[i], switches[j]);
                let (pa, pb) = (position[&a], position[&b]);
                position.insert(a, pb);
                position.insert(b, pa);
                let (total, _) = wire(&position);
                if total + 1e-12 < best_total {
                    best_total = total;
                    improved = true;
                } else {
                    position.insert(a, pa);
                    position.insert(b, pb);
                }
            }
        }
        if !improved {
            break;
        }
    }
    let (total_wire_mm, max_link_mm) = wire(&position);
    Floorplan {
        position_mm: position,
        max_link_mm,
        total_wire_mm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpipes_topology::builders::{mesh, ring};
    use xpipes_topology::Topology;

    #[test]
    fn mesh_uses_grid_coordinates() {
        let b = mesh(3, 2).unwrap();
        let spec = NocSpec::new("m", b.into_topology());
        let plan = floorplan(&spec);
        assert_eq!(plan.position_mm[&SwitchId(0)], (0.0, 0.0));
        assert_eq!(plan.position_mm[&SwitchId(4)], (1.0, 1.0));
        // All mesh links span one tile pitch.
        assert_eq!(plan.max_link_mm, TILE_PITCH_MM);
        // 7 bidi links = 14 edges × 1mm.
        assert_eq!(plan.total_wire_mm, 14.0);
    }

    #[test]
    fn ring_raster_creates_long_wrap_wires() {
        let spec = NocSpec::new("r", ring(9).unwrap());
        let plan = floorplan(&spec);
        // 3x3 raster: the closing ring link crosses the raster.
        assert!(plan.max_link_mm > TILE_PITCH_MM);
    }

    #[test]
    fn wire_limit_caps_frequency() {
        let b = mesh(2, 2).unwrap();
        let spec = NocSpec::new("m", b.into_topology());
        let plan = floorplan(&spec);
        // 1 mm at 500 ps/mm → 2 GHz cap with 1 stage.
        let cap = plan.wire_limited_fmax_mhz(1);
        assert!((cap - 2000.0).abs() < 1.0, "{cap}");
        assert_eq!(plan.derate(1500.0, 1), 1500.0);
        assert_eq!(plan.derate(2500.0, 1), cap);
        // Extra pipeline stages raise the cap.
        assert!(plan.wire_limited_fmax_mhz(2) > cap);
    }

    #[test]
    fn empty_topology_is_unconstrained() {
        let spec = NocSpec::new("e", Topology::new());
        let plan = floorplan(&spec);
        assert_eq!(plan.max_link_mm, 0.0);
        assert_eq!(plan.wire_limited_fmax_mhz(1), f64::INFINITY);
    }

    #[test]
    fn optimize_shortens_ring_wires() {
        let spec = NocSpec::new("r", ring(9).unwrap());
        let raster = floorplan(&spec);
        let tuned = optimize(&spec, &raster);
        assert!(tuned.total_wire_mm <= raster.total_wire_mm);
        assert!(tuned.max_link_mm <= raster.max_link_mm);
        // A 9-ring on a 3x3 raster can be placed as a cycle with unit or
        // near-unit hops: the optimizer should get close.
        assert!(
            tuned.total_wire_mm < raster.total_wire_mm,
            "greedy must find a swap"
        );
    }

    #[test]
    fn optimize_leaves_mesh_untouched() {
        let b = mesh(3, 3).unwrap();
        let spec = NocSpec::new("m", b.into_topology());
        let plan = floorplan(&spec);
        let tuned = optimize(&spec, &plan);
        // Grid placement is already optimal for a mesh.
        assert_eq!(tuned.total_wire_mm, plan.total_wire_mm);
    }

    #[test]
    fn grid_name_parsing() {
        assert_eq!(parse_grid_name("sw_2_3"), Some((2, 3)));
        assert_eq!(parse_grid_name("hub"), None);
        assert_eq!(parse_grid_name("sw_x_1"), None);
    }
}
