//! Routing-function co-design analysis.
//!
//! Computes the bandwidth each physical link carries under the
//! application's flows and the chosen (shortest-path source) routes. The
//! selection stage uses the imbalance metric to prefer topologies whose
//! routing spreads load; custom topologies are generated so heavy flows
//! get short, private paths.

use std::collections::HashMap;

use xpipes::XpipesError;
use xpipes_topology::route::RoutingTables;
use xpipes_topology::spec::NocSpec;
use xpipes_topology::{NiId, PortId, SwitchId, TaskGraph};

use xpipes_traffic::appdriven::{INITIATOR_SUFFIX, TARGET_SUFFIX};

/// Bandwidth (MB/s) per directed link, keyed by (source switch, output
/// port).
pub type LinkLoads = HashMap<(SwitchId, PortId), f64>;

/// Summary metrics over the link-load distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadReport {
    /// Heaviest link load in MB/s.
    pub max_mbps: f64,
    /// Mean load over loaded links in MB/s.
    pub mean_mbps: f64,
    /// `max / mean` — 1.0 is perfectly balanced.
    pub imbalance: f64,
    /// Number of links carrying any traffic.
    pub loaded_links: usize,
}

/// Computes per-link bandwidth loads for `graph` mapped on `spec`.
///
/// # Errors
///
/// [`XpipesError::UnknownNi`] when a flow endpoint has no NI in the
/// specification, and routing errors for disconnected topologies.
pub fn link_loads(spec: &NocSpec, graph: &TaskGraph) -> Result<LinkLoads, XpipesError> {
    let tables = RoutingTables::build(&spec.topology)?;
    let mut loads: LinkLoads = HashMap::new();
    for flow in graph.flows() {
        let src = ni_of(
            spec,
            graph.core_name(flow.src).unwrap_or_default(),
            INITIATOR_SUFFIX,
        )?;
        let dst = ni_of(
            spec,
            graph.core_name(flow.dst).unwrap_or_default(),
            TARGET_SUFFIX,
        )?;
        let route = tables.route(src, dst).ok_or(XpipesError::UnknownNi(dst))?;
        // Walk the route through the topology, loading each traversed
        // link (the final hop is the ejection port; count it too — it is
        // the switch-to-NI link).
        let mut cur = spec
            .topology
            .ni(src)
            .ok_or(XpipesError::UnknownNi(src))?
            .switch;
        for (i, hop) in route.hops().iter().enumerate() {
            *loads.entry((cur, *hop)).or_insert(0.0) += flow.bandwidth_mbps;
            if i + 1 < route.len() {
                let link = spec
                    .topology
                    .out_links(cur)
                    .find(|l| l.from_port == *hop)
                    .ok_or(XpipesError::ReassemblyError("route leaves topology"))?;
                cur = link.to;
            }
        }
    }
    Ok(loads)
}

/// Summarises a load map.
pub fn load_report(loads: &LinkLoads) -> LoadReport {
    if loads.is_empty() {
        return LoadReport {
            max_mbps: 0.0,
            mean_mbps: 0.0,
            imbalance: 1.0,
            loaded_links: 0,
        };
    }
    let max = loads.values().copied().fold(0.0, f64::max);
    let mean = loads.values().sum::<f64>() / loads.len() as f64;
    LoadReport {
        max_mbps: max,
        mean_mbps: mean,
        imbalance: if mean > 0.0 { max / mean } else { 1.0 },
        loaded_links: loads.len(),
    }
}

/// Recommends per-switch output-queue depths from the link-load profile:
/// switches sourcing above-average load get proportionally deeper queues
/// (capped at 2× the base) — the xpipesCompiler's "Component
/// Optimizations: Buffer Sizes" stage.
///
/// # Errors
///
/// Propagates load-analysis failures.
pub fn recommend_queue_depths(
    spec: &NocSpec,
    graph: &TaskGraph,
    base_depth: u32,
) -> Result<std::collections::HashMap<SwitchId, u32>, XpipesError> {
    let loads = link_loads(spec, graph)?;
    let report = load_report(&loads);
    let mut per_switch: std::collections::HashMap<SwitchId, f64> = std::collections::HashMap::new();
    for ((sw, _port), mbps) in &loads {
        let e = per_switch.entry(*sw).or_insert(0.0);
        *e = e.max(*mbps);
    }
    let mean = report.mean_mbps.max(1e-9);
    let mut depths = std::collections::HashMap::new();
    for (sw, load) in per_switch {
        let scale = (load / mean).clamp(1.0, 2.0);
        let depth = ((base_depth as f64) * scale).round() as u32;
        if depth > base_depth {
            depths.insert(sw, depth.max(2));
        }
    }
    Ok(depths)
}

fn ni_of(spec: &NocSpec, core: &str, suffix: &str) -> Result<NiId, XpipesError> {
    let suffixed = format!("{core}{suffix}");
    spec.topology
        .ni_by_name(&suffixed)
        .or_else(|| spec.topology.ni_by_name(core))
        .map(|a| a.ni)
        .ok_or(XpipesError::UnknownNi(NiId(usize::MAX)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use crate::mapping::{build_spec, map_to_mesh};

    fn setup() -> (NocSpec, TaskGraph) {
        let g = apps::vopd().expect("app builds");
        let m = map_to_mesh(&g, 3, 4, 1, 3).unwrap();
        let spec = build_spec(&g, &m, 32).unwrap();
        (spec, g)
    }

    #[test]
    fn loads_cover_all_flows() {
        let (spec, g) = setup();
        let loads = link_loads(&spec, &g).unwrap();
        assert!(!loads.is_empty());
        // Total load ≥ total bandwidth (each flow loads ≥1 link: its
        // ejection hop).
        let total: f64 = loads.values().sum();
        assert!(total >= g.total_bandwidth());
    }

    #[test]
    fn report_metrics_consistent() {
        let (spec, g) = setup();
        let loads = link_loads(&spec, &g).unwrap();
        let r = load_report(&loads);
        assert!(r.max_mbps >= r.mean_mbps);
        assert!(r.imbalance >= 1.0);
        assert_eq!(r.loaded_links, loads.len());
    }

    #[test]
    fn empty_loads_report() {
        let r = load_report(&LinkLoads::new());
        assert_eq!(r.loaded_links, 0);
        assert_eq!(r.imbalance, 1.0);
    }

    #[test]
    fn better_mapping_lowers_max_load() {
        let g = apps::vopd().expect("app builds");
        let good = {
            let m = map_to_mesh(&g, 3, 4, 1, 3).unwrap();
            let spec = build_spec(&g, &m, 32).unwrap();
            load_report(&link_loads(&spec, &g).unwrap()).max_mbps
        };
        // A scattered mapping forces heavy flows across the mesh,
        // concentrating load on central links.
        let bad = {
            let slot_of: Vec<usize> = (0..g.core_count()).map(|i| (i * 5) % 12).collect();
            let m = crate::mapping::MeshMapping {
                cols: 3,
                rows: 4,
                slot_of,
            };
            let spec = build_spec(&g, &m, 32).unwrap();
            load_report(&link_loads(&spec, &g).unwrap()).max_mbps
        };
        assert!(good <= bad, "good {good} bad {bad}");
    }

    #[test]
    fn queue_recommendations_target_hot_switches() {
        let (mut spec, g) = setup();
        let depths = recommend_queue_depths(&spec, &g, 6).unwrap();
        assert!(
            !depths.is_empty(),
            "VOPD load is uneven: some switch must deepen"
        );
        for (&sw, &d) in &depths {
            assert!((7..=12).contains(&d), "depth {d}");
            spec.set_queue_depth(sw, d).unwrap();
        }
        // The optimized spec still instantiates and validates.
        assert!(spec.validate().is_ok());
        // The hottest switch (most loaded outgoing link) got the deepest queue.
        let loads = link_loads(&spec, &g).unwrap();
        let (hot, _) = loads
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!(
            depths.contains_key(&hot.0),
            "hottest switch {:?} missing from {depths:?}",
            hot.0
        );
    }

    #[test]
    fn missing_core_errors() {
        let (spec, _) = setup();
        let mut g2 = TaskGraph::new("ghost");
        let a = g2.add_core("nosuch", xpipes_topology::CoreKind::Initiator);
        let b = g2.add_core("vld", xpipes_topology::CoreKind::Target);
        g2.add_flow(a, b, 1.0).unwrap();
        assert!(link_loads(&spec, &g2).is_err());
    }
}
