//! Benchmark application task graphs.
//!
//! The communication graphs standard in the NoC-synthesis literature
//! (used by the xpipes/NetChip/SunMap line of work), with bandwidths in
//! MB/s, plus the "D26" media SoC matching the paper's mesh case study
//! (8 processors and 11 slaves on a 3x4 mesh).

use std::fmt;

use xpipes_topology::appgraph::{CoreId, TaskGraphError};
use xpipes_topology::{CoreKind, TaskGraph};

/// A benchmark graph builder rejected one of its own flows: names the
/// application and carries the underlying graph error, so a typo in a
/// bundled spec reports itself instead of panicking in library code.
#[derive(Debug, Clone, PartialEq)]
pub struct AppBuildError {
    /// Name of the benchmark application whose graph failed to build.
    pub app: String,
    /// The rejected flow or core, as diagnosed by the task graph.
    pub source: TaskGraphError,
}

impl fmt::Display for AppBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "benchmark graph {}: {}", self.app, self.source)
    }
}

impl std::error::Error for AppBuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

fn flow(g: &mut TaskGraph, a: CoreId, b: CoreId, mbps: f64) -> Result<(), AppBuildError> {
    g.add_flow(a, b, mbps).map_err(|source| AppBuildError {
        app: g.name().to_string(),
        source,
    })
}

/// The MPEG-4 decoder core graph: SDRAM-centred communication with a mix
/// of light control flows and heavy media streams.
pub fn mpeg4_decoder() -> Result<TaskGraph, AppBuildError> {
    let mut g = TaskGraph::new("mpeg4");
    let vu = g.add_core("vu", CoreKind::Both);
    let au = g.add_core("au", CoreKind::Both);
    let med_cpu = g.add_core("med_cpu", CoreKind::Both);
    let sdram = g.add_core("sdram", CoreKind::Target);
    let sram1 = g.add_core("sram1", CoreKind::Target);
    let sram2 = g.add_core("sram2", CoreKind::Target);
    let rast = g.add_core("rast", CoreKind::Both);
    let adsp = g.add_core("adsp", CoreKind::Both);
    let up_samp = g.add_core("up_samp", CoreKind::Both);
    let idct = g.add_core("idct", CoreKind::Both);
    let risc = g.add_core("risc", CoreKind::Initiator);
    let bab = g.add_core("bab", CoreKind::Both);

    flow(&mut g, vu, sdram, 190.0)?;
    flow(&mut g, au, sdram, 0.5)?;
    flow(&mut g, med_cpu, sdram, 60.0)?;
    flow(&mut g, rast, sdram, 640.0)?;
    flow(&mut g, up_samp, sdram, 250.0)?;
    flow(&mut g, risc, sdram, 500.0)?;
    flow(&mut g, idct, sram1, 32.0)?;
    flow(&mut g, bab, sram1, 16.0)?;
    flow(&mut g, risc, sram2, 40.0)?;
    flow(&mut g, adsp, sram2, 0.5)?;
    flow(&mut g, med_cpu, sram2, 40.0)?;
    flow(&mut g, risc, au, 0.5)?;
    flow(&mut g, risc, vu, 0.5)?;
    flow(&mut g, risc, med_cpu, 0.5)?;
    flow(&mut g, risc, adsp, 0.5)?;
    flow(&mut g, risc, up_samp, 0.5)?;
    flow(&mut g, risc, bab, 0.5)?;
    flow(&mut g, risc, rast, 0.5)?;
    flow(&mut g, risc, idct, 0.5)?;
    Ok(g)
}

/// The Video Object Plane Decoder (VOPD) pipeline: 12 cores in a mostly
/// linear stream with published inter-stage bandwidths.
pub fn vopd() -> Result<TaskGraph, AppBuildError> {
    let mut g = TaskGraph::new("vopd");
    let vld = g.add_core("vld", CoreKind::Both);
    let run_le = g.add_core("run_le_dec", CoreKind::Both);
    let inv_scan = g.add_core("inv_scan", CoreKind::Both);
    let ac_dc = g.add_core("ac_dc_pred", CoreKind::Both);
    let stripe = g.add_core("stripe_mem", CoreKind::Both);
    let iquant = g.add_core("iquant", CoreKind::Both);
    let idct = g.add_core("idct", CoreKind::Both);
    let up_samp = g.add_core("up_samp", CoreKind::Both);
    let vop_rec = g.add_core("vop_rec", CoreKind::Both);
    let padding = g.add_core("padding", CoreKind::Both);
    let vop_mem = g.add_core("vop_mem", CoreKind::Both);
    let arm = g.add_core("arm", CoreKind::Both);

    flow(&mut g, vld, run_le, 70.0)?;
    flow(&mut g, run_le, inv_scan, 362.0)?;
    flow(&mut g, inv_scan, ac_dc, 362.0)?;
    flow(&mut g, ac_dc, stripe, 49.0)?;
    flow(&mut g, ac_dc, iquant, 357.0)?;
    flow(&mut g, stripe, iquant, 27.0)?;
    flow(&mut g, iquant, idct, 353.0)?;
    flow(&mut g, idct, up_samp, 300.0)?;
    flow(&mut g, up_samp, vop_rec, 313.0)?;
    flow(&mut g, vop_rec, padding, 313.0)?;
    flow(&mut g, padding, vop_mem, 313.0)?;
    flow(&mut g, vop_mem, vop_rec, 94.0)?;
    flow(&mut g, arm, idct, 16.0)?;
    flow(&mut g, arm, padding, 16.0)?;
    flow(&mut g, arm, vld, 16.0)?;
    Ok(g)
}

/// The Multi-Window Display (MWD) application: 12 cores with memory
/// staging between filter stages.
pub fn mwd() -> Result<TaskGraph, AppBuildError> {
    let mut g = TaskGraph::new("mwd");
    let in0 = g.add_core("in", CoreKind::Initiator);
    let nr = g.add_core("nr", CoreKind::Both);
    let mem1 = g.add_core("mem1", CoreKind::Both);
    let hs = g.add_core("hs", CoreKind::Both);
    let vs = g.add_core("vs", CoreKind::Both);
    let mem2 = g.add_core("mem2", CoreKind::Both);
    let hvs = g.add_core("hvs", CoreKind::Both);
    let jug1 = g.add_core("jug1", CoreKind::Both);
    let mem3 = g.add_core("mem3", CoreKind::Both);
    let jug2 = g.add_core("jug2", CoreKind::Both);
    let se = g.add_core("se", CoreKind::Both);
    let blend = g.add_core("blend", CoreKind::Target);

    flow(&mut g, in0, nr, 64.0)?;
    flow(&mut g, nr, mem1, 64.0)?;
    flow(&mut g, nr, mem2, 64.0)?;
    flow(&mut g, mem1, hs, 64.0)?;
    flow(&mut g, hs, vs, 128.0)?;
    flow(&mut g, vs, jug1, 64.0)?;
    flow(&mut g, mem2, hvs, 96.0)?;
    flow(&mut g, hvs, jug2, 96.0)?;
    flow(&mut g, jug1, mem3, 64.0)?;
    flow(&mut g, jug2, mem3, 96.0)?;
    flow(&mut g, mem3, se, 64.0)?;
    flow(&mut g, se, blend, 16.0)?;
    flow(&mut g, jug1, blend, 32.0)?;
    Ok(g)
}

/// The Picture-In-Picture (PIP) application: 8 cores, two parallel video
/// paths blended for display.
pub fn pip() -> Result<TaskGraph, AppBuildError> {
    let mut g = TaskGraph::new("pip");
    let inp_mem = g.add_core("inp_mem", CoreKind::Both);
    let hs = g.add_core("hs", CoreKind::Both);
    let vs = g.add_core("vs", CoreKind::Both);
    let jug = g.add_core("jug", CoreKind::Both);
    let mem = g.add_core("mem", CoreKind::Both);
    let hvs = g.add_core("hvs", CoreKind::Both);
    let jug2 = g.add_core("jug2", CoreKind::Both);
    let op_disp = g.add_core("op_disp", CoreKind::Target);

    flow(&mut g, inp_mem, hs, 128.0)?;
    flow(&mut g, hs, vs, 64.0)?;
    flow(&mut g, vs, jug, 64.0)?;
    flow(&mut g, inp_mem, hvs, 64.0)?;
    flow(&mut g, hvs, jug2, 64.0)?;
    flow(&mut g, jug, mem, 64.0)?;
    flow(&mut g, jug2, mem, 64.0)?;
    flow(&mut g, mem, op_disp, 64.0)?;
    Ok(g)
}

/// An H.263 encoder + MP3 decoder multimedia system: 12 cores with the
/// motion-estimation stream dominating.
pub fn h263_enc_mp3_dec() -> Result<TaskGraph, AppBuildError> {
    let mut g = TaskGraph::new("h263enc");
    let cam = g.add_core("cam", CoreKind::Initiator);
    let me = g.add_core("me", CoreKind::Both); // motion estimation
    let mc = g.add_core("mc", CoreKind::Both); // motion compensation
    let dct = g.add_core("dct", CoreKind::Both);
    let quant = g.add_core("quant", CoreKind::Both);
    let iquant = g.add_core("iquant", CoreKind::Both);
    let idct2 = g.add_core("idct", CoreKind::Both);
    let vlc = g.add_core("vlc", CoreKind::Both);
    let frame_mem = g.add_core("frame_mem", CoreKind::Both);
    let mp3_in = g.add_core("mp3_in", CoreKind::Initiator);
    let mp3_dec = g.add_core("mp3_dec", CoreKind::Both);
    let out = g.add_core("out", CoreKind::Target);

    flow(&mut g, cam, me, 304.0)?;
    flow(&mut g, frame_mem, me, 250.0)?;
    flow(&mut g, me, mc, 96.0)?;
    flow(&mut g, mc, dct, 96.0)?;
    flow(&mut g, dct, quant, 96.0)?;
    flow(&mut g, quant, iquant, 96.0)?;
    flow(&mut g, iquant, idct2, 96.0)?;
    flow(&mut g, idct2, frame_mem, 96.0)?;
    flow(&mut g, quant, vlc, 32.0)?;
    flow(&mut g, vlc, out, 16.0)?;
    flow(&mut g, mp3_in, mp3_dec, 8.0)?;
    flow(&mut g, mp3_dec, out, 4.0)?;
    Ok(g)
}

/// The "D26" media SoC of the paper's mesh case study: **8 processors and
/// 11 slaves**, mapped onto a 3x4 mesh in the paper. Processors stream to
/// shared SDRAMs and scratchpads; control traffic touches peripherals.
pub fn d26_media_soc() -> Result<TaskGraph, AppBuildError> {
    let mut g = TaskGraph::new("d26");
    // 8 processors.
    let mut procs: Vec<CoreId> = Vec::with_capacity(8);
    for i in 0..4 {
        procs.push(g.add_core(format!("arm{i}"), CoreKind::Initiator));
    }
    for i in 0..4 {
        procs.push(g.add_core(format!("dsp{i}"), CoreKind::Initiator));
    }
    // 11 slaves.
    let sdram: Vec<CoreId> = (0..3)
        .map(|i| g.add_core(format!("sdram{i}"), CoreKind::Target))
        .collect();
    let sram: Vec<CoreId> = (0..4)
        .map(|i| g.add_core(format!("sram{i}"), CoreKind::Target))
        .collect();
    let rom = g.add_core("rom", CoreKind::Target);
    let dma = g.add_core("dma_cfg", CoreKind::Target);
    let bridge = g.add_core("bridge", CoreKind::Target);
    let sem = g.add_core("sem", CoreKind::Target);

    for (i, &p) in procs.iter().enumerate() {
        // Heavy stream to "its" SDRAM bank, moderate to a scratchpad.
        flow(&mut g, p, sdram[i % 3], 200.0 + 25.0 * (i as f64))?;
        flow(&mut g, p, sram[i % 4], 80.0)?;
        // Light control traffic.
        flow(&mut g, p, sem, 2.0)?;
        flow(&mut g, p, bridge, 5.0)?;
    }
    // Boot/config traffic from the ARMs.
    for &p in &procs[..4] {
        flow(&mut g, p, rom, 1.0)?;
        flow(&mut g, p, dma, 4.0)?;
    }
    Ok(g)
}

/// All bundled applications, for sweep-style benches.
///
/// # Errors
///
/// Propagates the first builder failure, naming the offending app.
pub fn all() -> Result<Vec<TaskGraph>, AppBuildError> {
    Ok(vec![
        mpeg4_decoder()?,
        vopd()?,
        mwd()?,
        pip()?,
        h263_enc_mp3_dec()?,
        d26_media_soc()?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpeg4_shape() {
        let g = mpeg4_decoder().expect("app builds");
        assert_eq!(g.core_count(), 12);
        assert_eq!(g.flows().len(), 19);
        assert!(g.total_bandwidth() > 1500.0);
        // SDRAM is the hotspot.
        let sdram = g
            .cores()
            .find(|&c| g.core_name(c) == Some("sdram"))
            .unwrap();
        let inbound: f64 = g.flows_to(sdram).map(|f| f.bandwidth_mbps).sum();
        assert!(inbound > 1000.0);
    }

    #[test]
    fn vopd_shape() {
        let g = vopd().expect("app builds");
        assert_eq!(g.core_count(), 12);
        assert_eq!(g.flows().len(), 15);
    }

    #[test]
    fn mwd_shape() {
        let g = mwd().expect("app builds");
        assert_eq!(g.core_count(), 12);
        assert_eq!(g.flows().len(), 13);
    }

    #[test]
    fn d26_matches_case_study() {
        let g = d26_media_soc().expect("app builds");
        // 8 processors + 11 slaves = 19 cores, as in the paper.
        assert_eq!(g.core_count(), 19);
        let initiators = g
            .cores()
            .filter(|&c| g.core_kind(c) == Some(CoreKind::Initiator))
            .count();
        let targets = g
            .cores()
            .filter(|&c| g.core_kind(c) == Some(CoreKind::Target))
            .count();
        assert_eq!(initiators, 8);
        assert_eq!(targets, 11);
        assert!(g.flows().len() >= 30);
    }

    #[test]
    fn pip_shape() {
        let g = pip().expect("app builds");
        assert_eq!(g.core_count(), 8);
        assert_eq!(g.flows().len(), 8);
    }

    #[test]
    fn h263_shape() {
        let g = h263_enc_mp3_dec().expect("app builds");
        assert_eq!(g.core_count(), 12);
        assert_eq!(g.flows().len(), 12);
        // Motion estimation dominates.
        let me = g.cores().find(|&c| g.core_name(c) == Some("me")).unwrap();
        let inbound: f64 = g.flows_to(me).map(|f| f.bandwidth_mbps).sum();
        assert!(inbound > 500.0);
    }

    #[test]
    fn all_returns_six_apps() {
        let apps = all().expect("app builds");
        assert_eq!(apps.len(), 6);
        let names: Vec<&str> = apps.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["mpeg4", "vopd", "mwd", "pip", "h263enc", "d26"]);
    }

    #[test]
    fn every_app_maps_and_validates() {
        for g in all().expect("app builds") {
            let cap = 2;
            let slots_needed = g.core_count().div_ceil(cap);
            let side = (slots_needed as f64).sqrt().ceil() as usize;
            let rows = slots_needed.div_ceil(side);
            let m = crate::mapping::map_to_mesh(&g, side, rows, cap, 3)
                .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
            let spec = crate::mapping::build_spec(&g, &m, 32)
                .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        }
    }
}
