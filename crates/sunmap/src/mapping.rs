//! Application mapping: placing cores onto mesh slots.
//!
//! The SunMap stage "Mapping Onto Topologies": a greedy constructive
//! placement (heaviest-communicating cores first, each at the slot
//! minimising bandwidth-weighted hop cost) refined by simulated
//! annealing (random pairwise swaps under a geometric cooling schedule).

use std::collections::HashMap;

use xpipes_sim::SimRng;
use xpipes_topology::appgraph::CoreId;
use xpipes_topology::builders::{mesh, torus};
use xpipes_topology::spec::NocSpec;
use xpipes_topology::{TaskGraph, TopologyError};

/// Regular grid family a mapping is instantiated on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridKind {
    /// 2-D mesh.
    Mesh,
    /// 2-D torus (mesh plus wrap-around links).
    Torus,
}

use xpipes_traffic::appdriven::{INITIATOR_SUFFIX, TARGET_SUFFIX};

/// A placement of cores onto the slots of a `cols`×`rows` mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshMapping {
    /// Grid width.
    pub cols: usize,
    /// Grid height.
    pub rows: usize,
    /// Slot (grid cell index, `y*cols+x`) per core.
    pub slot_of: Vec<usize>,
}

impl MeshMapping {
    /// Grid coordinate of a core.
    pub fn coord_of(&self, core: CoreId) -> (usize, usize) {
        let slot = self.slot_of[core.0];
        (slot % self.cols, slot / self.cols)
    }

    /// Manhattan hop distance between two cores' switches.
    pub fn hops(&self, a: CoreId, b: CoreId) -> usize {
        let (ax, ay) = self.coord_of(a);
        let (bx, by) = self.coord_of(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Bandwidth-weighted communication cost of the mapping: the SunMap
    /// objective Σ bandwidth × (hops + 1).
    pub fn cost(&self, graph: &TaskGraph) -> f64 {
        graph
            .flows()
            .iter()
            .map(|f| f.bandwidth_mbps * (self.hops(f.src, f.dst) + 1) as f64)
            .sum()
    }

    /// Number of cores placed on each slot.
    pub fn occupancy(&self) -> Vec<usize> {
        let mut occ = vec![0usize; self.cols * self.rows];
        for &s in &self.slot_of {
            occ[s] += 1;
        }
        occ
    }
}

/// Maps `graph` onto a `cols`×`rows` mesh, at most `cap` cores per switch.
///
/// # Errors
///
/// [`TopologyError::EmptyDimension`] when the grid has no slots or too
/// little total capacity for the cores.
pub fn map_to_mesh(
    graph: &TaskGraph,
    cols: usize,
    rows: usize,
    cap: usize,
    seed: u64,
) -> Result<MeshMapping, TopologyError> {
    let slots = cols * rows;
    if slots == 0 || cap == 0 || slots * cap < graph.core_count() {
        return Err(TopologyError::EmptyDimension);
    }
    let mut rng = SimRng::seed(seed);

    // Order cores by total communication volume, heaviest first.
    let mut volume: HashMap<CoreId, f64> = HashMap::new();
    for f in graph.flows() {
        *volume.entry(f.src).or_insert(0.0) += f.bandwidth_mbps;
        *volume.entry(f.dst).or_insert(0.0) += f.bandwidth_mbps;
    }
    let mut order: Vec<CoreId> = graph.cores().collect();
    order.sort_by(|a, b| {
        let va = volume.get(a).copied().unwrap_or(0.0);
        let vb = volume.get(b).copied().unwrap_or(0.0);
        vb.partial_cmp(&va).expect("finite volumes")
    });

    // Greedy constructive placement.
    let mut slot_of = vec![usize::MAX; graph.core_count()];
    let mut occupancy = vec![0usize; slots];
    for &core in &order {
        let mut best = None;
        let mut best_cost = f64::INFINITY;
        #[allow(clippy::needless_range_loop)]
        for slot in 0..slots {
            if occupancy[slot] >= cap {
                continue;
            }
            let (sx, sy) = (slot % cols, slot / cols);
            let mut cost = 0.0;
            for f in graph.flows() {
                let other = if f.src == core {
                    f.dst
                } else if f.dst == core {
                    f.src
                } else {
                    continue;
                };
                if slot_of[other.0] != usize::MAX {
                    let os = slot_of[other.0];
                    let (ox, oy) = (os % cols, os / cols);
                    cost += f.bandwidth_mbps * (sx.abs_diff(ox) + sy.abs_diff(oy)) as f64;
                }
            }
            // Mild preference for central slots when unconstrained.
            let center_bias = (sx.abs_diff(cols / 2) + sy.abs_diff(rows / 2)) as f64 * 1e-3;
            let cost = cost + center_bias;
            if cost < best_cost {
                best_cost = cost;
                best = Some(slot);
            }
        }
        let slot = best.expect("capacity checked above");
        slot_of[core.0] = slot;
        occupancy[slot] += 1;
    }
    let mut mapping = MeshMapping {
        cols,
        rows,
        slot_of,
    };

    // Simulated-annealing refinement: random swaps / moves.
    let mut cost = mapping.cost(graph);
    let mut temp = cost * 0.05 + 1.0;
    let iterations = 300 * graph.core_count().max(4);
    for _ in 0..iterations {
        let a = CoreId(rng.below(graph.core_count()));
        let new_slot = rng.below(slots);
        let old_slot = mapping.slot_of[a.0];
        if new_slot == old_slot {
            continue;
        }
        // Move, or swap with a random occupant if the slot is full.
        let occ = mapping.occupancy();
        let mut swapped: Option<CoreId> = None;
        if occ[new_slot] >= cap {
            let occupants: Vec<CoreId> = graph
                .cores()
                .filter(|c| mapping.slot_of[c.0] == new_slot)
                .collect();
            let victim = occupants[rng.below(occupants.len())];
            mapping.slot_of[victim.0] = old_slot;
            swapped = Some(victim);
        }
        mapping.slot_of[a.0] = new_slot;
        let new_cost = mapping.cost(graph);
        let accept = new_cost <= cost || rng.chance(((cost - new_cost) / temp).exp());
        if accept {
            cost = new_cost;
        } else {
            mapping.slot_of[a.0] = old_slot;
            if let Some(v) = swapped {
                mapping.slot_of[v.0] = new_slot;
            }
        }
        temp *= 0.999;
    }
    Ok(mapping)
}

/// Builds a complete [`NocSpec`] from a mapping: a mesh topology with one
/// initiator NI per master role and one target NI (with a 1 MiB address
/// window) per slave role, named `<core>#i` / `<core>#t` per the traffic
/// convention.
///
/// # Errors
///
/// Propagates attachment errors (e.g. too many cores on one switch).
pub fn build_spec(
    graph: &TaskGraph,
    mapping: &MeshMapping,
    flit_width: u32,
) -> Result<NocSpec, TopologyError> {
    build_spec_grid(graph, mapping, flit_width, GridKind::Mesh)
}

/// Like [`build_spec`], but choosing the grid family (mesh or torus).
///
/// # Errors
///
/// Propagates attachment errors (e.g. too many cores on one switch).
pub fn build_spec_grid(
    graph: &TaskGraph,
    mapping: &MeshMapping,
    flit_width: u32,
    kind: GridKind,
) -> Result<NocSpec, TopologyError> {
    let mut b = match kind {
        GridKind::Mesh => mesh(mapping.cols, mapping.rows)?,
        GridKind::Torus => torus(mapping.cols, mapping.rows)?,
    };
    let mut targets = Vec::new();
    for core in graph.cores() {
        let name = graph.core_name(core).unwrap_or_default().to_string();
        let kind = graph.core_kind(core).expect("core exists");
        let at = mapping.coord_of(core);
        if kind.can_initiate() {
            b.attach_initiator(format!("{name}{INITIATOR_SUFFIX}"), at)?;
        }
        if kind.can_serve() {
            let ni = b.attach_target(format!("{name}{TARGET_SUFFIX}"), at)?;
            targets.push(ni);
        }
    }
    let mut spec = NocSpec::new(graph.name(), b.into_topology());
    spec.flit_width = flit_width;
    for (i, ni) in targets.into_iter().enumerate() {
        spec.map_address(ni, (i as u64) << 20, 1 << 20)
            .map_err(|_| TopologyError::EmptyDimension)?;
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use xpipes_topology::{CoreKind, NiKind};

    #[test]
    fn mapping_respects_capacity() {
        let g = apps::d26_media_soc().expect("app builds");
        let m = map_to_mesh(&g, 3, 4, 2, 1).unwrap();
        assert!(m.occupancy().iter().all(|&o| o <= 2));
        assert_eq!(m.slot_of.len(), 19);
    }

    #[test]
    fn insufficient_capacity_rejected() {
        let g = apps::d26_media_soc().expect("app builds"); // 19 cores
        assert!(map_to_mesh(&g, 3, 3, 2, 1).is_err()); // 18 slots*cap
        assert!(map_to_mesh(&g, 0, 4, 2, 1).is_err());
    }

    #[test]
    fn annealed_cost_beats_random() {
        let g = apps::vopd().expect("app builds");
        let good = map_to_mesh(&g, 3, 4, 1, 7).unwrap();
        // A deliberately poor mapping: identity order, round-robin slots
        // reversed (pipeline neighbours scattered).
        let mut bad_slots = Vec::new();
        for i in 0..g.core_count() {
            bad_slots.push((i * 5) % 12);
        }
        let bad = MeshMapping {
            cols: 3,
            rows: 4,
            slot_of: bad_slots,
        };
        assert!(
            good.cost(&g) < bad.cost(&g),
            "annealed {} vs scattered {}",
            good.cost(&g),
            bad.cost(&g)
        );
    }

    #[test]
    fn heavy_pairs_end_up_adjacent() {
        let g = apps::vopd().expect("app builds");
        let m = map_to_mesh(&g, 3, 4, 1, 3).unwrap();
        // The heaviest flows (≥300 MB/s) should average under 2 hops.
        let heavy: Vec<_> = g
            .flows()
            .iter()
            .filter(|f| f.bandwidth_mbps >= 300.0)
            .collect();
        let avg: f64 = heavy
            .iter()
            .map(|f| m.hops(f.src, f.dst) as f64)
            .sum::<f64>()
            / heavy.len() as f64;
        assert!(avg < 2.0, "avg heavy-flow hops {avg}");
    }

    #[test]
    fn cost_is_bandwidth_weighted() {
        let mut g = TaskGraph::new("t");
        let a = g.add_core("a", CoreKind::Initiator);
        let b2 = g.add_core("b", CoreKind::Target);
        g.add_flow(a, b2, 100.0).unwrap();
        let near = MeshMapping {
            cols: 2,
            rows: 1,
            slot_of: vec![0, 0],
        };
        let far = MeshMapping {
            cols: 2,
            rows: 1,
            slot_of: vec![0, 1],
        };
        assert_eq!(near.cost(&g), 100.0);
        assert_eq!(far.cost(&g), 200.0);
    }

    #[test]
    fn build_spec_attaches_roles() {
        let g = apps::d26_media_soc().expect("app builds");
        let m = map_to_mesh(&g, 3, 4, 2, 1).unwrap();
        let spec = build_spec(&g, &m, 32).unwrap();
        assert_eq!(spec.topology.nis_of_kind(NiKind::Initiator).count(), 8);
        assert_eq!(spec.topology.nis_of_kind(NiKind::Target).count(), 11);
        assert!(spec.validate().is_ok());
        assert!(spec.topology.ni_by_name("arm0#i").is_some());
        assert!(spec.topology.ni_by_name("sdram0#t").is_some());
    }

    #[test]
    fn build_spec_for_both_cores_gets_two_nis() {
        let g = apps::vopd().expect("app builds"); // all Both except none
        let m = map_to_mesh(&g, 4, 4, 1, 1).unwrap();
        let spec = build_spec(&g, &m, 32).unwrap();
        // 12 cores, all Both → 12 initiators + 12 targets.
        assert_eq!(spec.topology.nis().len(), 24);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn torus_spec_has_more_links_than_mesh() {
        let g = apps::mwd().expect("app builds");
        let m = map_to_mesh(&g, 3, 4, 1, 5).unwrap();
        let mesh_spec = build_spec_grid(&g, &m, 32, GridKind::Mesh).unwrap();
        let torus_spec = build_spec_grid(&g, &m, 32, GridKind::Torus).unwrap();
        assert!(torus_spec.topology.links().len() > mesh_spec.topology.links().len());
        assert!(torus_spec.validate().is_ok());
        // Wrap links shorten worst-case paths.
        assert!(
            torus_spec.topology.avg_initiator_target_hops()
                <= mesh_spec.topology.avg_initiator_target_hops()
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let g = apps::mwd().expect("app builds");
        let a = map_to_mesh(&g, 3, 4, 1, 5).unwrap();
        let b = map_to_mesh(&g, 3, 4, 1, 5).unwrap();
        assert_eq!(a, b);
    }
}
