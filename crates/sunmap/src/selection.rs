//! Topology selection: candidate generation and scored comparison.
//!
//! The SunMap "Topology Selection" stage: iterate a topology library
//! (mesh variants) plus a **custom application-specific topology**
//! clustered from the task graph, map the application onto each, evaluate
//! with the area/power libraries + floorplanner + simulator, and pick the
//! best under a weighted objective. The full report list reproduces the
//! paper's "sample xpipes topologies" comparison (experiment E7).

use std::fmt;

use xpipes::XpipesError;
use xpipes_topology::appgraph::CoreId;
use xpipes_topology::spec::NocSpec;
use xpipes_topology::{PortId, TaskGraph, Topology};

use xpipes_traffic::appdriven::{INITIATOR_SUFFIX, TARGET_SUFFIX};

use crate::eval::{evaluate, CandidateReport, EvalConfig, EvalError};
use crate::mapping::{build_spec_grid, map_to_mesh, GridKind};

/// Selection parameters.
#[derive(Debug, Clone, Copy)]
pub struct SelectionConfig {
    /// Flit width for all candidates.
    pub flit_width: u32,
    /// Cores per mesh switch.
    pub cores_per_switch: usize,
    /// Cores per custom-topology cluster.
    pub cluster_size: usize,
    /// Evaluation parameters.
    pub eval: EvalConfig,
    /// Objective weight on area.
    pub weight_area: f64,
    /// Objective weight on power.
    pub weight_power: f64,
    /// Objective weight on latency (ns).
    pub weight_latency: f64,
    /// Mapping/annealing seed.
    pub seed: u64,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            flit_width: 32,
            cores_per_switch: 2,
            cluster_size: 3,
            eval: EvalConfig::default(),
            weight_area: 1.0,
            weight_power: 0.5,
            weight_latency: 1.0,
            seed: 0x5E1EC7,
        }
    }
}

/// Result of a selection run.
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// Successfully evaluated candidates.
    pub reports: Vec<CandidateReport>,
    /// Index of the winner in `reports`.
    pub winner: usize,
    /// Candidates that failed, with reasons.
    pub failures: Vec<(String, String)>,
}

impl SelectionOutcome {
    /// The winning candidate's report.
    pub fn winner(&self) -> &CandidateReport {
        &self.reports[self.winner]
    }
}

impl fmt::Display for SelectionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.reports.iter().enumerate() {
            let mark = if i == self.winner { "*" } else { " " };
            writeln!(f, "{mark} {r}")?;
        }
        Ok(())
    }
}

/// Candidate mesh dimensions for `cores` cores at `cap` cores/switch.
fn mesh_candidates(cores: usize, cap: usize) -> Vec<(usize, usize)> {
    let needed = cores.div_ceil(cap).max(2);
    let side = (needed as f64).sqrt().ceil() as usize;
    let mut dims = vec![
        (side, needed.div_ceil(side)),
        (side + 1, needed.div_ceil(side + 1)),
        (needed.div_ceil(2), 2),
    ];
    dims.retain(|&(a, b)| a * b * cap >= cores && a >= 1 && b >= 1);
    dims.sort();
    dims.dedup();
    dims
}

/// Runs the full selection flow for `graph`.
///
/// # Errors
///
/// [`EvalError`] only when *no* candidate evaluates successfully;
/// individual candidate failures are collected in the outcome.
pub fn select(graph: &TaskGraph, config: &SelectionConfig) -> Result<SelectionOutcome, EvalError> {
    let mut reports = Vec::new();
    let mut failures = Vec::new();

    for (cols, rows) in mesh_candidates(graph.core_count(), config.cores_per_switch) {
        let mut kinds = vec![(GridKind::Mesh, format!("mesh{cols}x{rows}"))];
        // A torus only differs from the mesh when a dimension can wrap.
        if cols > 2 || rows > 2 {
            kinds.push((GridKind::Torus, format!("torus{cols}x{rows}")));
        }
        for (kind, name) in kinds {
            let result = map_to_mesh(graph, cols, rows, config.cores_per_switch, config.seed)
                .map_err(XpipesError::from)
                .map_err(EvalError::from)
                .and_then(|m| {
                    build_spec_grid(graph, &m, config.flit_width, kind)
                        .map_err(XpipesError::from)
                        .map_err(EvalError::from)
                })
                .and_then(|spec| evaluate(&name, &spec, graph, &config.eval));
            match result {
                Ok(r) => reports.push(r),
                Err(e) => failures.push((name, e.to_string())),
            }
        }
    }

    let custom = custom_topology(graph, config.flit_width, config.cluster_size).and_then(|spec| {
        evaluate("custom", &spec, graph, &config.eval).map_err(|e| match e {
            EvalError::Xpipes(x) => x,
            EvalError::Synth(s) => {
                XpipesError::ReassemblyError(Box::leak(s.to_string().into_boxed_str()))
            }
            EvalError::App(a) => {
                XpipesError::ReassemblyError(Box::leak(a.to_string().into_boxed_str()))
            }
        })
    });
    match custom {
        Ok(r) => reports.push(r),
        Err(e) => failures.push(("custom".to_string(), e.to_string())),
    }

    if reports.is_empty() {
        let (name, why) = failures
            .first()
            .cloned()
            .unwrap_or_else(|| ("<none>".into(), "no candidates generated".into()));
        return Err(EvalError::Xpipes(XpipesError::ReassemblyError(Box::leak(
            format!("all candidates failed; first: {name}: {why}").into_boxed_str(),
        ))));
    }

    // Weighted score against the per-objective minima.
    let min_area = reports
        .iter()
        .map(|r| r.area_mm2)
        .fold(f64::INFINITY, f64::min);
    let min_power = reports
        .iter()
        .map(|r| r.power_mw)
        .fold(f64::INFINITY, f64::min);
    let min_lat = reports
        .iter()
        .map(|r| r.avg_latency_ns.max(1e-9))
        .fold(f64::INFINITY, f64::min);
    let score = |r: &CandidateReport| {
        config.weight_area * r.area_mm2 / min_area
            + config.weight_power * r.power_mw / min_power
            + config.weight_latency * r.avg_latency_ns.max(1e-9) / min_lat
    };
    let winner = reports
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| score(a).partial_cmp(&score(b)).expect("finite scores"))
        .map(|(i, _)| i)
        .expect("nonempty");
    Ok(SelectionOutcome {
        reports,
        winner,
        failures,
    })
}

/// Applies the routing co-design's buffer-size recommendations to a
/// specification and re-evaluates it — the optional "Component
/// Optimizations: Buffer Sizes" pass run on a selection winner.
///
/// Returns the optimized spec and its report.
///
/// # Errors
///
/// Propagates analysis and evaluation failures.
pub fn optimize_buffers(
    spec: &NocSpec,
    graph: &TaskGraph,
    eval: &EvalConfig,
) -> Result<(NocSpec, CandidateReport), EvalError> {
    let mut optimized = spec.clone();
    let depths = crate::codesign::recommend_queue_depths(spec, graph, spec.output_queue_depth)?;
    for (sw, depth) in depths {
        optimized
            .set_queue_depth(sw, depth)
            .map_err(XpipesError::from)?;
    }
    let name = format!("{}+buffers", spec.name);
    let report = evaluate(&name, &optimized, graph, eval)?;
    Ok((optimized, report))
}

/// Builds a custom application-specific topology: cores are clustered by
/// communication affinity (greedy pair merging up to `cluster_size`),
/// each cluster becomes one switch, clusters are chained into a ring
/// ordered by affinity, and express links shortcut the heaviest
/// non-adjacent cluster pairs.
///
/// # Errors
///
/// Propagates construction errors; in particular, graphs whose clustered
/// diameter exceeds the 7-hop source-route limit are rejected at
/// validation.
pub fn custom_topology(
    graph: &TaskGraph,
    flit_width: u32,
    cluster_size: usize,
) -> Result<NocSpec, XpipesError> {
    let n = graph.core_count();
    assert!(cluster_size >= 1, "cluster size must be positive");
    // Affinity matrix between cores.
    let bw = |a: CoreId, b: CoreId| graph.bandwidth_between(a, b) + graph.bandwidth_between(b, a);

    // Greedy merging.
    let mut clusters: Vec<Vec<CoreId>> = graph.cores().map(|c| vec![c]).collect();
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..clusters.len() {
            for j in i + 1..clusters.len() {
                if clusters[i].len() + clusters[j].len() > cluster_size {
                    continue;
                }
                let affinity: f64 = clusters[i]
                    .iter()
                    .flat_map(|&a| clusters[j].iter().map(move |&b| bw(a, b)))
                    .sum();
                if affinity > 0.0 && best.is_none_or(|(_, _, w)| affinity > w) {
                    best = Some((i, j, affinity));
                }
            }
        }
        let Some((i, j, _)) = best else { break };
        let merged = clusters.remove(j);
        clusters[i].extend(merged);
    }

    // Order clusters into a chain by inter-cluster affinity (greedy
    // nearest-neighbour from the heaviest cluster).
    let cluster_affinity = |a: &[CoreId], b: &[CoreId]| -> f64 {
        a.iter()
            .flat_map(|&x| b.iter().map(move |&y| bw(x, y)))
            .sum()
    };
    let mut order: Vec<usize> = Vec::with_capacity(clusters.len());
    let mut remaining: Vec<usize> = (0..clusters.len()).collect();
    // Start at the cluster with the largest total traffic.
    remaining.sort_by(|&a, &b| {
        let ta: f64 = clusters[a]
            .iter()
            .map(|&c| {
                graph
                    .flows_from(c)
                    .chain(graph.flows_to(c))
                    .map(|f| f.bandwidth_mbps)
                    .sum::<f64>()
            })
            .sum();
        let tb: f64 = clusters[b]
            .iter()
            .map(|&c| {
                graph
                    .flows_from(c)
                    .chain(graph.flows_to(c))
                    .map(|f| f.bandwidth_mbps)
                    .sum::<f64>()
            })
            .sum();
        tb.partial_cmp(&ta).expect("finite")
    });
    order.push(remaining.remove(0));
    while !remaining.is_empty() {
        let last = *order.last().expect("nonempty");
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| {
                cluster_affinity(&clusters[last], &clusters[a])
                    .partial_cmp(&cluster_affinity(&clusters[last], &clusters[b]))
                    .expect("finite")
            })
            .expect("nonempty");
        order.push(remaining.remove(pos));
    }

    // Build the topology: one switch per cluster, ring + express links.
    let mut topo = Topology::new();
    let switches: Vec<_> = (0..order.len())
        .map(|i| topo.add_switch(format!("cl{i}")))
        .collect();
    let k = switches.len();
    if k > 1 {
        for i in 0..k {
            let next = (i + 1) % k;
            if k == 2 && i == 1 {
                break;
            }
            topo.add_bidi_link(switches[i], PortId(0), switches[next], PortId(1), 1)?;
        }
    }
    // Express links: heaviest non-adjacent ordered-cluster pairs.
    if k > 4 {
        let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..k {
            for j in i + 2..k {
                if i == 0 && j == k - 1 {
                    continue; // ring-adjacent via wraparound
                }
                let w = cluster_affinity(&clusters[order[i]], &clusters[order[j]]);
                if w > 0.0 {
                    pairs.push((i, j, w));
                }
            }
        }
        pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite"));
        let mut express_ports = vec![2u8; k];
        for (i, j, _) in pairs.into_iter().take(k / 2) {
            if express_ports[i] >= 4 || express_ports[j] >= 4 {
                continue;
            }
            let (pa, pb) = (express_ports[i], express_ports[j]);
            if topo
                .add_bidi_link(switches[i], PortId(pa), switches[j], PortId(pb), 1)
                .is_ok()
            {
                express_ports[i] += 1;
                express_ports[j] += 1;
            }
        }
    }

    // Attach NIs per cluster.
    let mut targets = Vec::new();
    for (pos, &ci) in order.iter().enumerate() {
        for &core in &clusters[ci] {
            let name = graph.core_name(core).unwrap_or_default().to_string();
            let kind = graph.core_kind(core).expect("exists");
            if kind.can_initiate() {
                topo.attach_ni_auto(
                    format!("{name}{INITIATOR_SUFFIX}"),
                    xpipes_topology::NiKind::Initiator,
                    switches[pos],
                )?;
            }
            if kind.can_serve() {
                let ni = topo.attach_ni_auto(
                    format!("{name}{TARGET_SUFFIX}"),
                    xpipes_topology::NiKind::Target,
                    switches[pos],
                )?;
                targets.push(ni);
            }
        }
    }
    let mut spec = NocSpec::new(format!("{}-custom", graph.name()), topo);
    spec.flit_width = flit_width;
    for (i, ni) in targets.into_iter().enumerate() {
        spec.map_address(ni, (i as u64) << 20, 1 << 20)?;
    }
    spec.validate()?;
    // Source routes must fit the header field.
    let tables = spec.routing_tables()?;
    if tables.max_hops() > xpipes_topology::route::MAX_HOPS {
        return Err(XpipesError::RouteTooLong {
            hops: tables.max_hops(),
            max: xpipes_topology::route::MAX_HOPS,
        });
    }
    let _ = n;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;

    #[test]
    fn mesh_candidate_dims_cover_cores() {
        for cores in [6, 12, 19, 30] {
            let dims = mesh_candidates(cores, 2);
            assert!(!dims.is_empty());
            for (a, b) in dims {
                assert!(a * b * 2 >= cores, "{a}x{b} cannot host {cores}");
            }
        }
    }

    #[test]
    fn custom_topology_is_valid_and_smaller_diameter() {
        let g = apps::vopd().expect("app builds");
        let spec = custom_topology(&g, 32, 3).unwrap();
        assert!(spec.validate().is_ok());
        // 12 cores at ≤3/cluster: at least 4 switches.
        assert!(spec.topology.switch_count() >= 4);
        // Fewer switches than the 3x4 mesh the paper would use.
        assert!(spec.topology.switch_count() < 12);
        // Heavy pipeline stages are clustered: average hops must beat a
        // scattered placement bound.
        assert!(spec.topology.avg_initiator_target_hops() < 4.0);
    }

    #[test]
    fn custom_topology_clusters_heavy_pairs() {
        let g = apps::vopd().expect("app builds");
        let spec = custom_topology(&g, 32, 3).unwrap();
        // run_le_dec -> inv_scan is the heaviest flow (362): they should
        // share a switch or be adjacent.
        let a = spec.topology.ni_by_name("run_le_dec#i").unwrap().switch;
        let b = spec.topology.ni_by_name("inv_scan#t").unwrap().switch;
        let hops = spec
            .topology
            .shortest_path(a, b)
            .map(|p| p.len())
            .unwrap_or(usize::MAX);
        assert!(hops <= 1, "heaviest pair is {hops} hops apart");
    }

    #[test]
    fn selection_runs_end_to_end() {
        let g = apps::mwd().expect("app builds");
        let mut cfg = SelectionConfig::default();
        cfg.eval.warmup = 200;
        cfg.eval.window = 1200;
        let outcome = select(&g, &cfg).unwrap();
        assert!(
            outcome.reports.len() >= 2,
            "failures: {:?}",
            outcome.failures
        );
        let display = outcome.to_string();
        assert!(display.contains('*'));
        // Winner must be a member.
        assert!(outcome.winner < outcome.reports.len());
        let _ = outcome.winner();
    }

    #[test]
    fn torus_candidates_appear_for_wrappable_grids() {
        let g = apps::vopd().expect("app builds");
        let mut cfg = SelectionConfig::default();
        cfg.eval.warmup = 100;
        cfg.eval.window = 600;
        let outcome = select(&g, &cfg).unwrap();
        let names: Vec<&str> = outcome.reports.iter().map(|r| r.name.as_str()).collect();
        assert!(
            names.iter().any(|n| n.starts_with("torus")),
            "no torus candidate in {names:?} (failures {:?})",
            outcome.failures
        );
    }

    #[test]
    fn buffer_optimization_is_applicable() {
        let g = apps::vopd().expect("app builds");
        let m = crate::mapping::map_to_mesh(&g, 3, 4, 1, 7).unwrap();
        let spec = crate::mapping::build_spec(&g, &m, 32).unwrap();
        let eval = crate::eval::EvalConfig {
            warmup: 200,
            window: 1200,
            ..Default::default()
        };
        let base = crate::eval::evaluate("base", &spec, &g, &eval).unwrap();
        let (optimized, report) = optimize_buffers(&spec, &g, &eval).unwrap();
        assert!(!optimized.queue_depth_overrides.is_empty());
        assert!(report.name.ends_with("+buffers"));
        // Deeper queues cost area, never save it.
        assert!(report.area_mm2 >= base.area_mm2);
    }

    #[test]
    fn latency_weight_steers_selection() {
        let g = apps::vopd().expect("app builds");
        let mut fast = SelectionConfig::default();
        fast.eval.warmup = 200;
        fast.eval.window = 1200;
        fast.weight_latency = 50.0;
        fast.weight_area = 0.01;
        fast.weight_power = 0.0;
        let fast_outcome = select(&g, &fast).unwrap();

        let mut small = fast;
        small.weight_latency = 0.01;
        small.weight_area = 50.0;
        let small_outcome = select(&g, &small).unwrap();

        let fast_winner = fast_outcome.winner();
        let small_winner = small_outcome.winner();
        assert!(small_winner.area_mm2 <= fast_winner.area_mm2 + 1e-9);
        assert!(fast_winner.avg_latency_ns <= small_winner.avg_latency_ns + 1e-9);
    }
}
