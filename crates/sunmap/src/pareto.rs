//! Pareto-front utilities over candidate reports.

use crate::eval::CandidateReport;

/// The objectives the selection stage minimises.
fn objectives(r: &CandidateReport) -> [f64; 3] {
    [r.area_mm2, r.power_mw, r.avg_latency_ns]
}

/// True when `a` dominates `b`: no objective worse, at least one better.
pub fn dominates(a: &CandidateReport, b: &CandidateReport) -> bool {
    let oa = objectives(a);
    let ob = objectives(b);
    let mut strictly_better = false;
    for (x, y) in oa.iter().zip(&ob) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Indices of the non-dominated candidates (the Pareto front), in input
/// order.
pub fn pareto_front(reports: &[CandidateReport]) -> Vec<usize> {
    (0..reports.len())
        .filter(|&i| {
            !reports
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && dominates(other, &reports[i]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(name: &str, area: f64, power: f64, lat_ns: f64) -> CandidateReport {
        CandidateReport {
            name: name.to_string(),
            area_mm2: area,
            fmax_mhz: 1000.0,
            power_mw: power,
            active_power_mw: power,
            avg_latency_cycles: lat_ns,
            avg_latency_ns: lat_ns,
            accepted_packets_per_cycle: 0.0,
            accepted_packets_per_us: 0.0,
            load_imbalance: 1.0,
            switches: 0,
            nis: 0,
        }
    }

    #[test]
    fn strict_domination() {
        let a = report("a", 1.0, 10.0, 50.0);
        let b = report("b", 2.0, 20.0, 60.0);
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
    }

    #[test]
    fn equal_reports_do_not_dominate() {
        let a = report("a", 1.0, 10.0, 50.0);
        let b = report("b", 1.0, 10.0, 50.0);
        assert!(!dominates(&a, &b));
        assert!(!dominates(&b, &a));
    }

    #[test]
    fn tradeoffs_are_incomparable() {
        let small_slow = report("ss", 1.0, 10.0, 100.0);
        let big_fast = report("bf", 2.0, 20.0, 40.0);
        assert!(!dominates(&small_slow, &big_fast));
        assert!(!dominates(&big_fast, &small_slow));
    }

    #[test]
    fn front_excludes_dominated() {
        let reports = vec![
            report("good-small", 1.0, 10.0, 100.0),
            report("good-fast", 2.0, 20.0, 40.0),
            report("bad", 3.0, 30.0, 120.0),
        ];
        let front = pareto_front(&reports);
        assert_eq!(front, vec![0, 1]);
    }

    #[test]
    fn empty_front() {
        assert!(pareto_front(&[]).is_empty());
    }
}
