//! Run-ledger integration contract, end to end through the binaries.
//!
//! The ledger's promises are cross-process by nature — records written
//! by one invocation must be readable (and comparable) by the next —
//! so this suite drives the real `cycle_engine`, `faultcampaign`, and
//! `xpipesobs` executables:
//!
//! * deterministic record fields are byte-identical across `--jobs`;
//! * `--ledger` appends across processes instead of truncating, and
//!   `xpipesobs` reads the accumulated history back;
//! * arming `--ledger` leaves the work fingerprint untouched;
//! * the sentinel passes a flat history and fails an injected
//!   throughput regression with exit code 2;
//! * corrupted and future-schema lines are rejected with exit code 2;
//! * a missing or empty ledger is an empty `list` (exit 0) but a
//!   one-line exit-2 error for `trend`/`check`;
//! * a campaign resumed from its journal appends exactly one ledger
//!   record across however many runs it takes.

use std::path::PathBuf;
use std::process::{Command, Output};

use xpipes_bench::ledger::{deterministic_view, parse_ledger, RecordBuilder};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xpipes_ledger_it_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn {bin}: {e}"))
}

fn run_ok(bin: &str, args: &[&str]) -> Output {
    let out = run(bin, args);
    assert!(
        out.status.success(),
        "{bin} {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    out
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("process exited")
}

#[test]
fn campaign_ledger_deterministic_fields_are_byte_identical_across_jobs() {
    let dir = temp_dir("jobs");
    let ledger_for = |jobs: &str| {
        let path = dir.join(format!("ledger-j{jobs}.ndjson"));
        let path_str = path.to_str().unwrap().to_string();
        run_ok(
            env!("CARGO_BIN_EXE_faultcampaign"),
            &[
                "--faults",
                "ack-loss,flit-corruption",
                "--cycles",
                "1500",
                "--rates",
                "0.02",
                "--jobs",
                jobs,
                "--ledger",
                &path_str,
                "--out",
                dir.join(format!("report-j{jobs}.json")).to_str().unwrap(),
            ],
        );
        std::fs::read_to_string(&path).expect("ledger written")
    };
    let serial = ledger_for("1");
    let parallel = ledger_for("4");
    let views = |text: &str| -> Vec<String> {
        parse_ledger(text, "test")
            .expect("ledger validates")
            .iter()
            .map(|e| deterministic_view(&e.json).render_compact())
            .collect()
    };
    assert_eq!(
        views(&serial),
        views(&parallel),
        "deterministic ledger fields depend on --jobs"
    );
    // The quarantined wall section is the only difference allowed — and
    // it must be present (elapsed, throughput, pool utilization).
    let entries = parse_ledger(&serial, "test").unwrap();
    assert_eq!(entries.len(), 1, "one campaign, one record");
    let wall = entries[0].json.get("wall").expect("wall section recorded");
    assert!(wall.get("pool").is_some(), "pool utilization recorded");
    assert!(entries[0].metric("cycles_per_sec").is_some());
}

#[test]
fn ledger_appends_across_processes_and_xpipesobs_reads_it_back() {
    let dir = temp_dir("append");
    let ledger = dir.join("ledger.ndjson");
    let ledger_str = ledger.to_str().unwrap();
    for i in 0..2 {
        run_ok(
            env!("CARGO_BIN_EXE_cycle_engine"),
            &[
                "--cycles",
                "2000",
                "--ledger",
                ledger_str,
                "--out",
                dir.join(format!("report-{i}.json")).to_str().unwrap(),
            ],
        );
    }
    let text = std::fs::read_to_string(&ledger).unwrap();
    let entries = parse_ledger(&text, "test").expect("ledger validates");
    assert_eq!(
        entries.len(),
        4,
        "two runs x two default workloads append, never truncate"
    );
    // Identical seeded work: the deterministic views of run 1 and run 2
    // agree per workload, across separate processes.
    assert_eq!(
        deterministic_view(&entries[0].json).render_compact(),
        deterministic_view(&entries[2].json).render_compact()
    );
    let list = run_ok(
        env!("CARGO_BIN_EXE_xpipesobs"),
        &["--ledger", ledger_str, "list"],
    );
    let stdout = String::from_utf8_lossy(&list.stdout).to_string();
    assert!(stdout.contains("uniform_random_4x4"), "{stdout}");
    assert!(stdout.contains("hotspot_4x4"), "{stdout}");
    let trend = run_ok(
        env!("CARGO_BIN_EXE_xpipesobs"),
        &["--ledger", ledger_str, "trend", "cycles"],
    );
    let stdout = String::from_utf8_lossy(&trend.stdout).to_string();
    assert!(stdout.contains("2 runs"), "{stdout}");
}

#[test]
fn arming_the_ledger_leaves_the_work_fingerprint_unchanged() {
    let dir = temp_dir("fingerprint");
    let fp_for = |armed: bool| {
        let fp = dir.join(format!("fp-{armed}.json"));
        let mut args = vec![
            "--workload".to_string(),
            "uniform_random_4x4".to_string(),
            "--cycles".to_string(),
            "2000".to_string(),
            "--out".to_string(),
            dir.join(format!("report-{armed}.json"))
                .to_str()
                .unwrap()
                .to_string(),
            "--fingerprint-out".to_string(),
            fp.to_str().unwrap().to_string(),
        ];
        if armed {
            args.push("--ledger".to_string());
            args.push(dir.join("ledger.ndjson").to_str().unwrap().to_string());
        }
        let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
        run_ok(env!("CARGO_BIN_EXE_cycle_engine"), &arg_refs);
        std::fs::read(&fp).expect("fingerprint written")
    };
    assert_eq!(
        fp_for(false),
        fp_for(true),
        "arming --ledger must not perturb the work fingerprint"
    );
}

/// Synthesizes a ledger with the library builder (the same code the
/// binaries run) so the sentinel contract is pinned without depending
/// on real wall-clock noise.
fn synthetic_history(cps_latest: f64) -> String {
    let record = |cps: f64| {
        RecordBuilder::new("cycle_engine", "uniform_random_4x4", 42, 0xFEED)
            .work_u64("cycles", 50_000)
            .work_u64("packets_delivered", 15_000)
            .work_u64("retransmissions", 0)
            .wall_fixed("elapsed_s", 0.2, 4)
            .wall_fixed("cycles_per_sec", cps, 0)
            .build()
            .render_compact()
    };
    let mut text = String::new();
    for i in 0..6 {
        text.push_str(&record(300_000.0 + f64::from(i) * 2_000.0));
        text.push('\n');
    }
    text.push_str(&record(cps_latest));
    text.push('\n');
    text
}

#[test]
fn sentinel_passes_flat_history_and_fails_injected_regression_with_exit_2() {
    let dir = temp_dir("sentinel");
    let flat = dir.join("flat.ndjson");
    std::fs::write(&flat, synthetic_history(304_000.0)).unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_xpipesobs"),
        &["--ledger", flat.to_str().unwrap(), "check"],
    );
    assert_eq!(
        exit_code(&out),
        0,
        "flat history must pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("within tolerance"));

    // A 20% throughput drop against the same history must fail with the
    // one-line error + exit-2 contract at default tolerances.
    let regressed = dir.join("regressed.ndjson");
    std::fs::write(&regressed, synthetic_history(305_000.0 * 0.8)).unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_xpipesobs"),
        &["--ledger", regressed.to_str().unwrap(), "check"],
    );
    assert_eq!(exit_code(&out), 2, "regression must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.lines().any(|l| l.starts_with("error: ")),
        "one-line error contract: {stderr}"
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("FAIL"));
}

#[test]
fn corrupted_and_future_schema_ledgers_are_rejected_with_exit_2() {
    let dir = temp_dir("reject");
    let future = dir.join("future.ndjson");
    let line = synthetic_history(300_000.0)
        .lines()
        .next()
        .unwrap()
        .replace("\"schema\":1", "\"schema\":99");
    std::fs::write(&future, format!("{line}\n")).unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_xpipesobs"),
        &["--ledger", future.to_str().unwrap(), "list"],
    );
    assert_eq!(exit_code(&out), 2);
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("schema version 99"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let corrupt = dir.join("corrupt.ndjson");
    let whole = synthetic_history(300_000.0);
    std::fs::write(&corrupt, &whole[..whole.len() / 3]).unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_xpipesobs"),
        &["--ledger", corrupt.to_str().unwrap(), "check"],
    );
    assert_eq!(exit_code(&out), 2);
    assert!(
        String::from_utf8_lossy(&out.stderr).starts_with("error: "),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn missing_or_empty_ledgers_follow_the_exit_code_contract() {
    let dir = temp_dir("absent");
    let missing = dir.join("never-written.ndjson");
    let missing_path = missing.to_str().unwrap();

    // `list` on a ledger that does not exist yet is an empty answer,
    // not an error: exit 0 with a one-line explanation.
    let out = run(
        env!("CARGO_BIN_EXE_xpipesobs"),
        &["--ledger", missing_path, "list"],
    );
    assert_eq!(exit_code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("holds no records"), "{stdout}");
    assert_eq!(stdout.lines().count(), 1, "{stdout}");

    // `trend` and `check` need history to say anything, so the same
    // absence is a one-line error with exit code 2.
    for cmd in [
        vec!["--ledger", missing_path, "trend", "cycle-engine"],
        vec!["--ledger", missing_path, "check"],
    ] {
        let out = run(env!("CARGO_BIN_EXE_xpipesobs"), &cmd);
        assert_eq!(exit_code(&out), 2, "{cmd:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.starts_with("error: "), "{cmd:?}: {stderr}");
        assert!(stderr.contains("holds no records"), "{cmd:?}: {stderr}");
        assert_eq!(stderr.lines().count(), 1, "{cmd:?}: {stderr}");
    }

    // A ledger file that exists but holds zero records behaves the same
    // as a missing one.
    let empty = dir.join("empty.ndjson");
    std::fs::write(&empty, "").unwrap();
    let empty_path = empty.to_str().unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_xpipesobs"),
        &["--ledger", empty_path, "list"],
    );
    assert_eq!(exit_code(&out), 0);
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("holds no records"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let out = run(
        env!("CARGO_BIN_EXE_xpipesobs"),
        &["--ledger", empty_path, "check"],
    );
    assert_eq!(exit_code(&out), 2);
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("holds no records"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn resumed_campaign_appends_exactly_one_ledger_record() {
    let dir = temp_dir("resume_once");
    let journal = dir.join("journal");
    let ledger = dir.join("ledger.ndjson");
    let base_args = [
        "--faults",
        "flit-corruption",
        "--cycles",
        "400",
        "--rates",
        "0.02",
        "--seed",
        "13",
        "--resume",
        journal.to_str().unwrap(),
        "--ledger",
        ledger.to_str().unwrap(),
    ];

    // First run completes the campaign and appends its record.
    run_ok(env!("CARGO_BIN_EXE_faultcampaign"), &base_args);
    let first = std::fs::read_to_string(&ledger).unwrap();
    assert_eq!(first.lines().count(), 1);

    // A rerun against the same journal — the recovery path after a
    // kill-and-resume — replays the journaled points but must not
    // append a second record for the same campaign.
    let out = run_ok(env!("CARGO_BIN_EXE_faultcampaign"), &base_args);
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("already appended"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let second = std::fs::read_to_string(&ledger).unwrap();
    assert_eq!(second, first, "resume appended a duplicate record");

    // A *different* campaign against a fresh journal still appends, so
    // the guard is keyed by configuration, not by ledger presence.
    let journal2 = dir.join("journal2");
    run_ok(
        env!("CARGO_BIN_EXE_faultcampaign"),
        &[
            "--faults",
            "ack-loss",
            "--cycles",
            "400",
            "--rates",
            "0.02",
            "--seed",
            "13",
            "--resume",
            journal2.to_str().unwrap(),
            "--ledger",
            ledger.to_str().unwrap(),
        ],
    );
    let third = std::fs::read_to_string(&ledger).unwrap();
    assert_eq!(third.lines().count(), 2);
}
