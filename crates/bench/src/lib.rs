//! # xpipes-bench — experiment harness
//!
//! Regenerates every table and figure in the xpipes Lite paper's
//! evaluation, plus the ablations called out in DESIGN.md. The
//! [`experiments`] module computes the data (so integration tests can
//! assert the paper's qualitative claims); the criterion benches under
//! `benches/` print the paper-style tables and measure the underlying
//! engines. See EXPERIMENTS.md at the workspace root for the experiment
//! index and paper-vs-measured record.

pub mod baseline;
pub mod checkpoint;
pub mod cycle_engine;
pub mod experiments;
pub mod ledger;
pub mod progress;
pub mod table;

pub use progress::ProgressStream;
pub use table::Table;
