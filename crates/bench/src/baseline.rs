//! Shared baseline-artifact loading for the bench binaries.
//!
//! Both `cycle_engine --check` and `checkpoint_bench --check` read a
//! previously recorded JSON report and validate its syntax before
//! comparing against it. The error contract is one line on stderr
//! (prefixed `error: ` by the caller) followed by exit code 2, the
//! bins' shared usage-error convention.

use xpipes_sim::Json;

/// Reads and syntax-validates a baseline JSON artifact, returning the
/// raw text for the caller's positional field scanning.
///
/// # Errors
///
/// A one-line message (`cannot read baseline …` or `baseline … is not
/// valid JSON: …`); the caller prints it with the `error: ` prefix and
/// exits 2.
pub fn load_baseline(path: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("baseline {path} is not valid JSON: {e}"))?;
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, body: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("xpipes_baseline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, body).unwrap();
        path
    }

    #[test]
    fn valid_baseline_round_trips() {
        let path = tmp("ok.json", "{\"speedup\": 2.5}\n");
        let text = load_baseline(path.to_str().unwrap()).unwrap();
        assert!(text.contains("speedup"));
    }

    #[test]
    fn missing_file_reports_one_line() {
        let err = load_baseline("/nonexistent/xpipes-baseline.json").unwrap_err();
        assert!(err.starts_with("cannot read baseline"), "{err}");
        assert!(!err.contains('\n'));
    }

    #[test]
    fn invalid_json_reports_one_line() {
        let path = tmp("bad.json", "{not json");
        let err = load_baseline(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("is not valid JSON"), "{err}");
        assert!(!err.contains('\n'));
    }
}
