//! The run ledger: a durable, append-only NDJSON record of every run.
//!
//! A single run's introspection (telemetry, attribution, kernel health)
//! evaporates the moment the process exits; the ledger is the cross-run
//! layer. Every bench binary appends one schema-versioned JSON line per
//! run (`--ledger PATH`), recording what was run (workload, seed, config
//! digest), what work it did (the deterministic fingerprint counters),
//! what the observers saw (kernel dispatch mix, attribution phase
//! totals, telemetry summary), and how fast the wall clock said it went.
//!
//! The determinism quarantine follows `KernelProfile`'s contract: every
//! wall-clock-derived field lives under the record's single `wall` key,
//! and [`deterministic_view`] strips exactly that key — two runs of the
//! same seeded work render byte-identical deterministic views at any
//! `--jobs` count. The `xpipesobs` binary reads the ledger back:
//! `list`/`show` render history, `trend` prints per-workload metric
//! trajectories, `compare` reuses [`xpipes_sim::attribution::diff`]'s
//! mover ranking across two entries, and `check` is the regression
//! sentinel — the latest run per group against a rolling window
//! (median ± MAD tolerance) of its predecessors.

use crate::checkpoint::CheckpointBench;
use crate::cycle_engine::{Workload, WorkloadResult, BENCH_SEED};
use xpipes_sim::snapshot::fnv64;
use xpipes_sim::{CampaignReport, Json};

/// Ledger line schema version understood (and written) by this build.
/// Lines carrying a newer version are rejected rather than misread.
pub const SCHEMA_VERSION: u64 = 1;

/// Digest of the run configuration: everything that makes two runs
/// comparable (workload parameters, cycle budgets, rates). Runs with
/// different digests are never compared by the sentinel.
#[must_use]
pub fn config_digest(parts: &[(&str, String)]) -> u64 {
    let mut s = String::new();
    for (key, value) in parts {
        s.push_str(key);
        s.push('=');
        s.push_str(value);
        s.push(';');
    }
    fnv64(s.as_bytes())
}

/// Builds one ledger record. Deterministic sections (`work`, `kernel`,
/// `telemetry`, `attribution`) and the quarantined `wall` section are
/// kept apart by construction: wall-clock data can only enter through
/// [`wall_fixed`](Self::wall_fixed) / [`pool`](Self::pool), which land
/// under the single stripped key.
pub struct RecordBuilder {
    source: &'static str,
    workload: String,
    seed: u64,
    config: u64,
    pass: bool,
    work: Vec<(String, Json)>,
    kernel: Option<Json>,
    telemetry: Option<Json>,
    attribution: Option<Json>,
    wall: Vec<(String, Json)>,
}

impl RecordBuilder {
    /// Starts a record for one run of `workload` by `source` (the bench
    /// binary name), seeded with `seed` under the given config digest.
    #[must_use]
    pub fn new(source: &'static str, workload: &str, seed: u64, config: u64) -> Self {
        RecordBuilder {
            source,
            workload: workload.to_string(),
            seed,
            config,
            pass: true,
            work: Vec::new(),
            kernel: None,
            telemetry: None,
            attribution: None,
            wall: Vec::new(),
        }
    }

    /// Marks the run's verdict (campaign monitors, gate checks). Defaults
    /// to `true` for plain measurements.
    #[must_use]
    pub fn pass(mut self, pass: bool) -> Self {
        self.pass = pass;
        self
    }

    /// Adds a deterministic work counter (fingerprint material).
    #[must_use]
    pub fn work_u64(mut self, key: &str, value: u64) -> Self {
        self.work.push((key.to_string(), Json::UInt(value)));
        self
    }

    /// Adds a deterministic fixed-precision work metric (e.g. average
    /// latency in cycles — simulated time, not wall time).
    #[must_use]
    pub fn work_fixed(mut self, key: &str, value: f64, precision: usize) -> Self {
        self.work
            .push((key.to_string(), Json::Fixed(value, precision)));
        self
    }

    /// Attaches the kernel-health dispatch mix (deterministic counters).
    #[must_use]
    pub fn kernel(mut self, health: Json) -> Self {
        self.kernel = Some(health);
        self
    }

    /// Attaches the telemetry summary (deterministic counters).
    #[must_use]
    pub fn telemetry(mut self, summary: Json) -> Self {
        self.telemetry = Some(summary);
        self
    }

    /// Attaches the attribution section extracted from a full report or
    /// an [`xpipes_sim::AttributionSummary`] JSON — anything carrying
    /// `phase_totals`. Per-channel `components` are kept when present so
    /// `xpipesobs compare` can rank movers; otherwise an empty component
    /// list keeps the section diffable.
    #[must_use]
    pub fn attribution(mut self, report: &Json) -> Self {
        if let Some(totals) = report.get("phase_totals") {
            let components = report
                .get("components")
                .cloned()
                .unwrap_or(Json::Array(Vec::new()));
            self.attribution = Some(
                Json::object()
                    .field("phase_totals", totals.clone())
                    .field("components", components)
                    .build(),
            );
        }
        self
    }

    /// Adds a wall-clock metric to the quarantined `wall` section.
    #[must_use]
    pub fn wall_fixed(mut self, key: &str, value: f64, precision: usize) -> Self {
        self.wall
            .push((key.to_string(), Json::Fixed(value, precision)));
        self
    }

    /// Attaches worker-pool utilization (wall-clock; quarantined).
    #[must_use]
    pub fn pool(mut self, stats: Json) -> Self {
        self.wall.push(("pool".to_string(), stats));
        self
    }

    /// Renders the record. Field order is fixed so identical runs render
    /// byte-identically; `wall` is last and is the only key
    /// [`deterministic_view`] removes.
    #[must_use]
    pub fn build(self) -> Json {
        let build_info = Json::object()
            .field("package", Json::str(env!("CARGO_PKG_VERSION")))
            .field(
                "profile",
                Json::str(if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }),
            )
            .build();
        let mut b = Json::object()
            .field("schema", Json::UInt(SCHEMA_VERSION))
            .field("source", Json::str(self.source))
            .field("workload", Json::str(self.workload))
            .field("seed", Json::UInt(self.seed))
            .field("config", Json::str(format!("{:016x}", self.config)))
            .field("pass", Json::Bool(self.pass))
            .field("build", build_info)
            .field("work", Json::Object(self.work));
        if let Some(kernel) = self.kernel {
            b = b.field("kernel", kernel);
        }
        if let Some(telemetry) = self.telemetry {
            b = b.field("telemetry", telemetry);
        }
        if let Some(attribution) = self.attribution {
            b = b.field("attribution", attribution);
        }
        b.field("wall", Json::Object(self.wall)).build()
    }
}

/// One `cycle_engine` run as a ledger record. The attribution report
/// (when the ledger ran) contributes the network-wide mean end-to-end
/// latency to the `work` section and the diffable attribution section;
/// the telemetry digest rides along when given. Everything outside
/// `wall` is a pure function of the seeded work.
#[must_use]
pub fn engine_record(
    result: &WorkloadResult,
    run_cycles: u64,
    telemetry_summary: Option<Json>,
    attribution_report: Option<&Json>,
) -> Json {
    let rate = Workload::from_name(result.name)
        .map(|w| format!("{:016x}", w.rate().to_bits()))
        .unwrap_or_default();
    let config = config_digest(&[
        ("workload", result.name.to_string()),
        ("cycles", run_cycles.to_string()),
        ("rate", rate),
    ]);
    let mut b = RecordBuilder::new("cycle_engine", result.name, BENCH_SEED, config)
        .work_u64("cycles", result.cycles)
        .work_u64("flits_routed", result.flits_routed)
        .work_u64("packets_delivered", result.packets_delivered)
        .work_u64("retransmissions", result.retransmissions);
    if let Some(latency) = attribution_report.and_then(mean_latency_of_report) {
        b = b.work_fixed("avg_latency", latency, 2);
    }
    b = b.kernel(result.kernel_health.to_json());
    if let Some(summary) = telemetry_summary {
        b = b.telemetry(summary);
    }
    if let Some(report) = attribution_report {
        b = b.attribution(report);
    }
    b.wall_fixed("elapsed_s", result.elapsed_s, 4)
        .wall_fixed("cycles_per_sec", result.cycles_per_sec, 0)
        .wall_fixed("flits_per_sec", result.flits_per_sec, 0)
        .build()
}

/// Mean end-to-end packet latency (cycles) from an attribution report
/// or summary: the six phase totals telescope to the exact end-to-end
/// latency, so their sum over the delivered-packet count is the mean.
fn mean_latency_of_report(report: &Json) -> Option<f64> {
    let packets = report.get("packets").and_then(Json::as_u64)?;
    if packets == 0 {
        return None;
    }
    let Json::Object(totals) = report.get("phase_totals")? else {
        return None;
    };
    let sum: f64 = totals.iter().filter_map(|(_, v)| v.as_f64()).sum();
    Some(sum / packets as f64)
}

/// One `faultcampaign` run as a ledger record: the whole grid collapses
/// to one line (work counters summed across every grid point, the
/// pass/fail verdict, the baseline point's telemetry and attribution
/// digests). `config` is the campaign config fingerprint — the same
/// digest the resume journal checks — so only identically-parameterized
/// campaigns are compared.
///
/// No kernel section: campaign grid points run with monitors armed, so
/// their dispatch mix is all-fallback by construction and carries no
/// signal. `pool` is the worker pool's (wall-clock, quarantined)
/// utilization.
#[must_use]
pub fn campaign_record(
    report: &CampaignReport,
    config: u64,
    elapsed_s: f64,
    pool: Option<Json>,
) -> Json {
    let mut cycles = report.baseline.cycles;
    let mut delivered = report.baseline.packets_delivered;
    let mut retransmissions = report.baseline.retransmissions;
    for run in &report.runs {
        cycles += run.summary.cycles;
        delivered += run.summary.packets_delivered;
        retransmissions += run.summary.retransmissions;
    }
    let mut b = RecordBuilder::new("faultcampaign", &report.name, report.seed, config)
        .pass(report.pass)
        .work_u64("cycles", cycles)
        .work_u64("grid_points", 1 + report.runs.len() as u64)
        .work_u64("packets_delivered", delivered)
        .work_u64("retransmissions", retransmissions)
        .work_fixed("avg_latency", report.baseline.avg_latency, 2);
    if let Some(telemetry) = &report.baseline.telemetry {
        b = b.telemetry(telemetry.to_json());
    }
    if let Some(attribution) = &report.baseline.attribution {
        b = b.attribution(&attribution.to_json());
    }
    b = b.wall_fixed("elapsed_s", elapsed_s, 4).wall_fixed(
        "cycles_per_sec",
        if elapsed_s > 0.0 {
            cycles as f64 / elapsed_s
        } else {
            0.0
        },
        0,
    );
    if let Some(stats) = pool {
        b = b.pool(stats);
    }
    b.build()
}

/// One `checkpoint_bench` run as a ledger record. The deterministic
/// work is the planned warm-path simulation (one warm-up plus one
/// window per rate) and the warm curve's mean latency; the headline
/// wall metric is the cold/warm `speedup` the sentinel watches.
#[must_use]
pub fn checkpoint_record(bench: &CheckpointBench, seed: u64) -> Json {
    let mut rates = String::new();
    for r in &bench.rates {
        rates.push_str(&format!("{:016x},", r.to_bits()));
    }
    let config = config_digest(&[
        ("rates", rates),
        ("warmup", bench.warmup.to_string()),
        ("window", bench.window.to_string()),
    ]);
    let warm_cycles = bench.warmup + bench.rates.len() as u64 * bench.window;
    let mut b = RecordBuilder::new("checkpoint_bench", "warm_start_sweep", seed, config)
        .work_u64("cycles", warm_cycles)
        .work_u64("points", bench.warm_points.len() as u64);
    if !bench.warm_points.is_empty() {
        let mean = bench
            .warm_points
            .iter()
            .map(|p| p.avg_latency_cycles)
            .sum::<f64>()
            / bench.warm_points.len() as f64;
        b = b.work_fixed("avg_latency", mean, 2);
    }
    b.wall_fixed("elapsed_s", bench.cold_s + bench.warm_s, 4)
        .wall_fixed("speedup", bench.speedup, 3)
        .build()
}

/// The record minus its quarantined `wall` section: everything left is
/// deterministic for seeded work, so two renderings of the same run —
/// any `--jobs`, any host — are byte-identical.
#[must_use]
pub fn deterministic_view(record: &Json) -> Json {
    match record {
        Json::Object(fields) => Json::Object(
            fields
                .iter()
                .filter(|(key, _)| key != "wall")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

/// One validated ledger line.
#[derive(Debug, Clone)]
pub struct LedgerEntry {
    /// 1-based line number in the ledger file (the `list`/`show`/
    /// `compare` handle).
    pub line: usize,
    /// The parsed record.
    pub json: Json,
}

impl LedgerEntry {
    /// The bench binary that wrote the record.
    #[must_use]
    pub fn source(&self) -> &str {
        self.json
            .get("source")
            .and_then(Json::as_str)
            .unwrap_or("?")
    }

    /// The workload name.
    #[must_use]
    pub fn workload(&self) -> &str {
        self.json
            .get("workload")
            .and_then(Json::as_str)
            .unwrap_or("?")
    }

    /// The run seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.json.get("seed").and_then(Json::as_u64).unwrap_or(0)
    }

    /// The 16-hex config digest.
    #[must_use]
    pub fn config(&self) -> &str {
        self.json
            .get("config")
            .and_then(Json::as_str)
            .unwrap_or("?")
    }

    /// The run verdict.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.json.get("pass") == Some(&Json::Bool(true))
    }

    /// Comparison-group key: only entries from the same source,
    /// workload, and config digest are comparable runs of the same work.
    #[must_use]
    pub fn group_key(&self) -> String {
        format!("{}:{}@{}", self.source(), self.workload(), self.config())
    }

    /// First 8 hex digits of the config digest (display form).
    #[must_use]
    pub fn short_config(&self) -> &str {
        let c = self.config();
        c.get(..8).unwrap_or(c)
    }

    /// Looks a metric up by name in the deterministic `work` section
    /// first, then the quarantined `wall` section.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<f64> {
        for section in ["work", "wall"] {
            if let Some(v) = self
                .json
                .get(section)
                .and_then(|s| s.get(name))
                .and_then(Json::as_f64)
            {
                return Some(v);
            }
        }
        None
    }
}

fn require_str(json: &Json, key: &str, origin: &str, line: usize) -> Result<(), String> {
    if json.get(key).and_then(Json::as_str).is_none() {
        return Err(format!(
            "{origin} line {line}: missing string field {key:?}"
        ));
    }
    Ok(())
}

/// Parses and validates ledger text (`origin` names the source in error
/// messages). Blank lines are tolerated; anything else must be a
/// well-formed, schema-compatible record.
///
/// # Errors
///
/// One-line message naming the first offending line: unparsable JSON, a
/// missing/zero schema version, a schema version newer than
/// [`SCHEMA_VERSION`], or a missing required field.
pub fn parse_ledger(text: &str, origin: &str) -> Result<Vec<LedgerEntry>, String> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let json =
            Json::parse(raw).map_err(|e| format!("{origin} line {line}: not valid JSON: {e}"))?;
        let schema = json
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{origin} line {line}: missing schema version"))?;
        if schema == 0 || schema > SCHEMA_VERSION {
            return Err(format!(
                "{origin} line {line}: schema version {schema} not understood \
                 (this build reads 1..={SCHEMA_VERSION})"
            ));
        }
        require_str(&json, "source", origin, line)?;
        require_str(&json, "workload", origin, line)?;
        require_str(&json, "config", origin, line)?;
        if json.get("seed").and_then(Json::as_u64).is_none() {
            return Err(format!(
                "{origin} line {line}: missing integer field \"seed\""
            ));
        }
        let work = json
            .get("work")
            .ok_or_else(|| format!("{origin} line {line}: missing work section"))?;
        if work.get("cycles").and_then(Json::as_u64).is_none() {
            return Err(format!(
                "{origin} line {line}: work section has no cycle count"
            ));
        }
        if json.get("wall").is_none() {
            return Err(format!("{origin} line {line}: missing wall section"));
        }
        entries.push(LedgerEntry { line, json });
    }
    Ok(entries)
}

/// Reads and validates a ledger file.
///
/// # Errors
///
/// `cannot read ledger <path>: <cause>` on I/O failure, otherwise
/// [`parse_ledger`]'s per-line messages.
pub fn read_ledger(path: &str) -> Result<Vec<LedgerEntry>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read ledger {path}: {e}"))?;
    parse_ledger(&text, &format!("ledger {path}"))
}

/// [`read_ledger`], but a ledger that does not exist yet is `Ok(None)`
/// rather than an I/O error — a ledger nobody has appended to is an
/// ordinary state for `xpipesobs list`, not a failure.
///
/// # Errors
///
/// Everything [`read_ledger`] reports, except file-not-found.
pub fn read_ledger_if_exists(path: &str) -> Result<Option<Vec<LedgerEntry>>, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse_ledger(&text, &format!("ledger {path}")).map(Some),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(format!("cannot read ledger {path}: {e}")),
    }
}

/// Name of the marker file a resumable campaign drops in its journal
/// directory after appending its ledger record, so a campaign that is
/// killed *after* the append and then resumed to completion does not
/// append a second record for the same run.
pub const LEDGER_MARKER: &str = "ledger-appended";

/// Whether journal directory `dir` already recorded its ledger append
/// for the campaign with this config fingerprint. A marker left by a
/// different configuration (a reused directory) does not count.
#[must_use]
pub fn campaign_ledger_recorded(dir: &std::path::Path, fingerprint: u64) -> bool {
    match std::fs::read_to_string(dir.join(LEDGER_MARKER)) {
        Ok(text) => text.trim() == format!("{fingerprint:016x}"),
        Err(_) => false,
    }
}

/// Drops the [`LEDGER_MARKER`] for this fingerprint in journal
/// directory `dir`; call immediately after the ledger append succeeds.
///
/// # Errors
///
/// Propagates the write failure.
pub fn record_campaign_ledger_appended(
    dir: &std::path::Path,
    fingerprint: u64,
) -> std::io::Result<()> {
    std::fs::write(dir.join(LEDGER_MARKER), format!("{fingerprint:016x}\n"))
}

/// One sentinel-checked metric and which direction is a regression.
#[derive(Debug, Clone, Copy)]
pub struct MetricSpec {
    /// Metric name (looked up per [`LedgerEntry::metric`]).
    pub name: &'static str,
    /// `true` when growth is the anomaly (latency, retransmissions);
    /// `false` when shrinkage is (throughput, speedup).
    pub higher_is_worse: bool,
}

/// The metrics `xpipesobs check` watches, when a group records them.
pub const CHECKED_METRICS: [MetricSpec; 4] = [
    MetricSpec {
        name: "cycles_per_sec",
        higher_is_worse: false,
    },
    MetricSpec {
        name: "speedup",
        higher_is_worse: false,
    },
    MetricSpec {
        name: "avg_latency",
        higher_is_worse: true,
    },
    MetricSpec {
        name: "retransmissions",
        higher_is_worse: true,
    },
];

/// Sentinel tuning.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Rolling window: at most this many prior entries per group.
    pub window: usize,
    /// Tolerance in MADs around the prior median.
    pub mad_k: f64,
    /// Relative tolerance floor (fraction of the median), so a
    /// zero-spread (fully deterministic) history still tolerates
    /// harmless jitter in wall metrics.
    pub min_rel: f64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            window: 8,
            mad_k: 4.0,
            min_rel: 0.10,
        }
    }
}

/// One sentinel verdict: the latest run's metric against its group's
/// rolling history.
#[derive(Debug, Clone)]
pub struct MetricCheck {
    /// Comparison group ([`LedgerEntry::group_key`]).
    pub group: String,
    /// Metric name.
    pub metric: &'static str,
    /// Latest run's value.
    pub latest: f64,
    /// Median of the prior window.
    pub median: f64,
    /// Median absolute deviation of the prior window.
    pub mad: f64,
    /// Allowed deviation from the median (`max(mad_k·MAD, min_rel·|median|)`).
    pub tolerance: f64,
    /// Prior entries that carried the metric.
    pub priors: usize,
    /// Direction ([`MetricSpec::higher_is_worse`]).
    pub higher_is_worse: bool,
    /// `true` when the latest value left the tolerated band on the
    /// regression side.
    pub anomalous: bool,
}

fn median_of(mut values: Vec<f64>) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("ledger metrics are finite"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Median and median absolute deviation of `values`.
#[must_use]
pub fn median_mad(values: &[f64]) -> (f64, f64) {
    let median = median_of(values.to_vec());
    let deviations = values.iter().map(|v| (v - median).abs()).collect();
    (median, median_of(deviations))
}

/// Splits entries into comparison groups, in order of first appearance,
/// preserving per-group run order.
#[must_use]
pub fn group_entries(entries: &[LedgerEntry]) -> Vec<(String, Vec<&LedgerEntry>)> {
    let mut groups: Vec<(String, Vec<&LedgerEntry>)> = Vec::new();
    for entry in entries {
        let key = entry.group_key();
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(entry),
            None => groups.push((key, vec![entry])),
        }
    }
    groups
}

/// The regression sentinel: for every group with history, compares the
/// latest entry's checked metrics against the rolling window of its
/// predecessors. Groups with no prior entries, and metrics absent from
/// either side, are skipped (nothing to compare — not an anomaly).
#[must_use]
pub fn check(entries: &[LedgerEntry], cfg: &CheckConfig) -> Vec<MetricCheck> {
    let mut out = Vec::new();
    for (key, members) in group_entries(entries) {
        let (latest, priors) = members.split_last().expect("groups are non-empty");
        if priors.is_empty() {
            continue;
        }
        for spec in &CHECKED_METRICS {
            let Some(current) = latest.metric(spec.name) else {
                continue;
            };
            let values: Vec<f64> = priors
                .iter()
                .rev()
                .take(cfg.window)
                .filter_map(|e| e.metric(spec.name))
                .collect();
            if values.is_empty() {
                continue;
            }
            let (median, mad) = median_mad(&values);
            let tolerance = (cfg.mad_k * mad).max(cfg.min_rel * median.abs());
            let anomalous = if spec.higher_is_worse {
                current > median + tolerance
            } else {
                current < median - tolerance
            };
            out.push(MetricCheck {
                group: key.clone(),
                metric: spec.name,
                latest: current,
                median,
                mad,
                tolerance,
                priors: values.len(),
                higher_is_worse: spec.higher_is_worse,
                anomalous,
            });
        }
    }
    out
}

/// Renders sentinel verdicts, one line per checked metric.
#[must_use]
pub fn render_checks(checks: &[MetricCheck]) -> String {
    let mut out = String::new();
    for c in checks {
        let verdict = if c.anomalous { "FAIL" } else { "ok" };
        let side = if c.higher_is_worse { "above" } else { "below" };
        out.push_str(&format!(
            "{verdict:<4} {group} {metric}: latest {latest:.2} vs median {median:.2} \
             (mad {mad:.2}, tolerated {side} up to {tolerance:.2}, {priors} prior runs)\n",
            group = c.group,
            metric = c.metric,
            latest = c.latest,
            median = c.median,
            mad = c.mad,
            tolerance = c.tolerance,
            priors = c.priors,
        ));
    }
    out
}

/// Per-group trajectory of one metric: `(group key, [(line, value)])`
/// in run order — the `trend` subcommand's data.
#[must_use]
pub fn trend(entries: &[LedgerEntry], metric: &str) -> Vec<(String, Vec<(usize, f64)>)> {
    group_entries(entries)
        .into_iter()
        .filter_map(|(key, members)| {
            let series: Vec<(usize, f64)> = members
                .iter()
                .filter_map(|e| e.metric(metric).map(|v| (e.line, v)))
                .collect();
            if series.is_empty() {
                None
            } else {
                Some((key, series))
            }
        })
        .collect()
}

/// Renders a [`trend`] table.
#[must_use]
pub fn render_trend(rows: &[(String, Vec<(usize, f64)>)], metric: &str) -> String {
    let mut out = String::new();
    for (group, series) in rows {
        out.push_str(&format!("{group} {metric}:\n"));
        for (line, value) in series {
            out.push_str(&format!("  line {line:>4}  {value:.2}\n"));
        }
        if let (Some((_, first)), Some((_, last))) = (series.first(), series.last()) {
            let delta = if *first != 0.0 {
                (last - first) / first * 100.0
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {n} runs, first-to-latest {delta:+.1}%\n",
                n = series.len()
            ));
        }
    }
    out
}

/// Renders the `list` table: one row per entry.
#[must_use]
pub fn render_list(entries: &[LedgerEntry]) -> String {
    let mut out = format!(
        "{:>5}  {:<16} {:<22} {:>6} {:<8} {:>12} {:>11} {:>12} {:>5}\n",
        "line", "source", "workload", "seed", "config", "cycles", "delivered", "cycles/s", "pass"
    );
    for e in entries {
        let cycles = e
            .metric("cycles")
            .map_or("-".to_string(), |v| format!("{v:.0}"));
        let delivered = e
            .metric("packets_delivered")
            .map_or("-".to_string(), |v| format!("{v:.0}"));
        let cps = e
            .metric("cycles_per_sec")
            .map_or("-".to_string(), |v| format!("{v:.0}"));
        out.push_str(&format!(
            "{:>5}  {:<16} {:<22} {:>6} {:<8} {:>12} {:>11} {:>12} {:>5}\n",
            e.line,
            e.source(),
            e.workload(),
            e.seed(),
            e.short_config(),
            cycles,
            delivered,
            cps,
            if e.pass() { "yes" } else { "NO" },
        ));
    }
    out
}

/// Compares two entries: headline metric deltas, then — when both
/// recorded attribution — the [`xpipes_sim::attribution::diff`] mover
/// ranking explaining where the latency moved.
///
/// # Errors
///
/// Propagates attribution-diff shape errors (malformed sections).
pub fn compare(a: &LedgerEntry, b: &LedgerEntry) -> Result<String, String> {
    let mut out = format!(
        "compare line {} ({}) -> line {} ({})\n",
        a.line,
        a.group_key(),
        b.line,
        b.group_key()
    );
    if a.group_key() != b.group_key() {
        out.push_str(
            "note: entries are from different run groups — deltas compare different work\n",
        );
    }
    for name in [
        "cycles",
        "packets_delivered",
        "flits_routed",
        "retransmissions",
        "avg_latency",
        "cycles_per_sec",
        "speedup",
    ] {
        let (Some(va), Some(vb)) = (a.metric(name), b.metric(name)) else {
            continue;
        };
        let delta = if va != 0.0 {
            format!("{:+.1}%", (vb - va) / va * 100.0)
        } else {
            "n/a".to_string()
        };
        out.push_str(&format!(
            "  {name:<18} {va:>14.2} -> {vb:>14.2}  ({delta})\n"
        ));
    }
    match (a.json.get("attribution"), b.json.get("attribution")) {
        (Some(base), Some(current)) => {
            let diff = xpipes_sim::attribution::diff(base, current)?;
            out.push_str("attribution movers:\n");
            out.push_str(&diff.render(10));
        }
        _ => out.push_str("attribution: not recorded on both entries; no mover ranking\n"),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(workload: &str, cps: f64, latency: f64, retx: u64) -> Json {
        RecordBuilder::new("cycle_engine", workload, 42, 0xDEAD_BEEF)
            .work_u64("cycles", 1000)
            .work_u64("flits_routed", 400)
            .work_u64("packets_delivered", 20)
            .work_u64("retransmissions", retx)
            .work_fixed("avg_latency", latency, 2)
            .wall_fixed("elapsed_s", 0.5, 4)
            .wall_fixed("cycles_per_sec", cps, 0)
            .build()
    }

    fn ledger_from(records: &[Json]) -> Vec<LedgerEntry> {
        let text: String = records
            .iter()
            .map(|r| format!("{}\n", r.render_compact()))
            .collect();
        parse_ledger(&text, "test").expect("builder records validate")
    }

    #[test]
    fn built_records_validate_and_round_trip() {
        let rec = record("uniform_random_4x4", 350_000.0, 41.5, 0);
        let entries = ledger_from(std::slice::from_ref(&rec));
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.source(), "cycle_engine");
        assert_eq!(e.workload(), "uniform_random_4x4");
        assert_eq!(e.seed(), 42);
        assert_eq!(e.config(), "00000000deadbeef");
        assert!(e.pass());
        assert_eq!(e.metric("cycles"), Some(1000.0));
        assert_eq!(e.metric("cycles_per_sec"), Some(350_000.0));
        assert_eq!(e.metric("no_such_metric"), None);
    }

    #[test]
    fn deterministic_view_strips_exactly_the_wall_section() {
        let rec = record("uniform_random_4x4", 1.0, 2.0, 3);
        let view = deterministic_view(&rec);
        let text = view.render_compact();
        assert!(!text.contains("\"wall\""));
        assert!(!text.contains("cycles_per_sec"));
        assert!(text.contains("\"work\""));
        assert!(text.contains("\"schema\""));
        // Different wall clocks, same work: views are byte-identical.
        let other = record("uniform_random_4x4", 999.0, 2.0, 3);
        assert_eq!(text, deterministic_view(&other).render_compact());
    }

    #[test]
    fn parser_rejects_garbage_and_future_schema() {
        assert!(parse_ledger("not json\n", "test")
            .unwrap_err()
            .contains("line 1"));
        let no_schema = r#"{"source":"x"}"#;
        assert!(parse_ledger(no_schema, "test")
            .unwrap_err()
            .contains("missing schema version"));
        let future = record("w", 1.0, 1.0, 0);
        let future_text = future
            .render_compact()
            .replace("\"schema\":1", "\"schema\":99");
        let err = parse_ledger(&future_text, "test").unwrap_err();
        assert!(err.contains("schema version 99"), "{err}");
        // A truncated (corrupted) line is rejected too.
        let whole = record("w", 1.0, 1.0, 0).render_compact();
        let truncated = &whole[..whole.len() / 2];
        assert!(parse_ledger(truncated, "test").is_err());
        // Blank lines are tolerated.
        let ok_text = format!("\n{whole}\n\n");
        assert_eq!(parse_ledger(&ok_text, "test").unwrap().len(), 1);
    }

    #[test]
    fn flat_history_passes_and_regression_is_flagged() {
        let mut records: Vec<Json> = (0..5)
            .map(|i| {
                record(
                    "uniform_random_4x4",
                    350_000.0 + i as f64 * 1_000.0,
                    41.5,
                    0,
                )
            })
            .collect();
        // Flat history: latest within 1% of the median — no anomaly.
        records.push(record("uniform_random_4x4", 351_000.0, 41.5, 0));
        let checks = check(&ledger_from(&records), &CheckConfig::default());
        assert!(!checks.is_empty());
        assert!(checks.iter().all(|c| !c.anomalous), "{checks:?}");

        // A 20% throughput drop must be flagged.
        records.pop();
        records.push(record("uniform_random_4x4", 352_000.0 * 0.8, 41.5, 0));
        let checks = check(&ledger_from(&records), &CheckConfig::default());
        let cps = checks
            .iter()
            .find(|c| c.metric == "cycles_per_sec")
            .expect("throughput was checked");
        assert!(cps.anomalous, "{cps:?}");
    }

    #[test]
    fn direction_matters_for_anomalies() {
        let mut records: Vec<Json> = (0..4)
            .map(|_| record("hotspot_4x4", 100_000.0, 40.0, 10))
            .collect();
        // Faster, lower-latency, fewer retransmissions: improvements are
        // never anomalies.
        records.push(record("hotspot_4x4", 150_000.0, 20.0, 0));
        let checks = check(&ledger_from(&records), &CheckConfig::default());
        assert!(checks.iter().all(|c| !c.anomalous), "{checks:?}");

        // Higher latency and retransmission growth are.
        records.pop();
        records.push(record("hotspot_4x4", 100_000.0, 55.0, 14));
        let checks = check(&ledger_from(&records), &CheckConfig::default());
        assert!(
            checks
                .iter()
                .find(|c| c.metric == "avg_latency")
                .is_some_and(|c| c.anomalous),
            "{checks:?}"
        );
        assert!(
            checks
                .iter()
                .find(|c| c.metric == "retransmissions")
                .is_some_and(|c| c.anomalous),
            "{checks:?}"
        );
    }

    #[test]
    fn single_entry_groups_are_skipped() {
        let records = [
            record("uniform_random_4x4", 1.0, 1.0, 0),
            record("hotspot_4x4", 2.0, 1.0, 0),
        ];
        assert!(check(&ledger_from(&records), &CheckConfig::default()).is_empty());
    }

    #[test]
    fn groups_separate_by_config_digest() {
        let a = record("uniform_random_4x4", 100.0, 1.0, 0);
        let b = RecordBuilder::new("cycle_engine", "uniform_random_4x4", 42, 0x0BAD_CAFE)
            .work_u64("cycles", 9999)
            .wall_fixed("cycles_per_sec", 1.0, 0)
            .build();
        let entries = ledger_from(&[a, b]);
        let groups = group_entries(&entries);
        assert_eq!(groups.len(), 2, "different digests must not be compared");
        assert!(check(&entries, &CheckConfig::default()).is_empty());
    }

    #[test]
    fn median_mad_basics() {
        let (m, d) = median_mad(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(m, 3.0);
        assert_eq!(d, 1.0, "MAD shrugs off the outlier");
        let (m, d) = median_mad(&[5.0, 5.0]);
        assert_eq!((m, d), (5.0, 0.0));
    }

    #[test]
    fn trend_tracks_groups_in_order() {
        let records = [
            record("uniform_random_4x4", 100.0, 1.0, 0),
            record("hotspot_4x4", 50.0, 1.0, 0),
            record("uniform_random_4x4", 110.0, 1.0, 0),
        ];
        let rows = trend(&ledger_from(&records), "cycles_per_sec");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1, vec![(1, 100.0), (3, 110.0)]);
        assert_eq!(rows[1].1, vec![(2, 50.0)]);
        let text = render_trend(&rows, "cycles_per_sec");
        assert!(text.contains("first-to-latest +10.0%"), "{text}");
        assert!(trend(&ledger_from(&records), "no_such_metric").is_empty());
    }

    #[test]
    fn compare_renders_deltas_and_handles_missing_attribution() {
        let entries = ledger_from(&[
            record("uniform_random_4x4", 100_000.0, 40.0, 0),
            record("uniform_random_4x4", 120_000.0, 44.0, 0),
        ]);
        let text = compare(&entries[0], &entries[1]).unwrap();
        assert!(text.contains("cycles_per_sec"), "{text}");
        assert!(text.contains("+20.0%"), "{text}");
        assert!(text.contains("no mover ranking"), "{text}");
    }

    #[test]
    fn compare_ranks_movers_when_attribution_is_recorded() {
        let section = |stall: u64| {
            Json::object()
                .field(
                    "phase_totals",
                    Json::object()
                        .field("source_queue", Json::UInt(10))
                        .field("ni_packetization", Json::UInt(20))
                        .field("output_queue", Json::UInt(5))
                        .field("arbitration_stall", Json::UInt(stall))
                        .field("link_traversal", Json::UInt(100))
                        .field("retx_penalty", Json::UInt(0))
                        .build(),
                )
                .field(
                    "components",
                    Json::Array(vec![Json::object()
                        .field("channel", Json::str("sw0->sw1"))
                        .field(
                            "phases",
                            Json::object()
                                .field("source_queue", Json::UInt(10))
                                .field("ni_packetization", Json::UInt(20))
                                .field("output_queue", Json::UInt(5))
                                .field("arbitration_stall", Json::UInt(stall))
                                .field("link_traversal", Json::UInt(100))
                                .field("retx_penalty", Json::UInt(0))
                                .build(),
                        )
                        .build()]),
                )
                .build()
        };
        let make = |stall: u64| {
            RecordBuilder::new("cycle_engine", "uniform_random_4x4", 42, 1)
                .work_u64("cycles", 1000)
                .attribution(&section(stall))
                .wall_fixed("elapsed_s", 0.1, 4)
                .build()
        };
        let entries = ledger_from(&[make(10), make(500)]);
        let text = compare(&entries[0], &entries[1]).unwrap();
        assert!(text.contains("attribution movers"), "{text}");
        assert!(text.contains("sw0->sw1"), "{text}");
    }

    #[test]
    fn list_renders_one_row_per_entry() {
        let entries = ledger_from(&[
            record("uniform_random_4x4", 100.0, 1.0, 0),
            record("hotspot_4x4", 50.0, 1.0, 0),
        ]);
        let text = render_list(&entries);
        assert_eq!(text.lines().count(), 3, "{text}");
        assert!(text.contains("uniform_random_4x4"));
        assert!(text.contains("hotspot_4x4"));
    }

    #[test]
    fn config_digest_tracks_parts() {
        let a = config_digest(&[("cycles", "1000".to_string())]);
        let b = config_digest(&[("cycles", "2000".to_string())]);
        assert_ne!(a, b);
        assert_eq!(a, config_digest(&[("cycles", "1000".to_string())]));
    }
}
