//! Live run-progress streaming: an NDJSON heartbeat for long runs.
//!
//! Long benchmark and campaign runs were silent until the final report;
//! [`ProgressStream`] gives them an epoch-cadenced heartbeat — one JSON
//! object per line, appended as the run advances, so an operator (or the
//! ROADMAP's future `xpipesadm watch`) can tail a file and see cycle
//! position, throughput, delivered packets, kernel-mode mix, and an ETA
//! while the run is still going.
//!
//! Progress output is strictly an *observer*: arming it never changes
//! the simulated schedule, RNG streams, or any byte-compared artifact.
//! Heartbeat lines themselves may carry wall-clock rates (they are not
//! byte-compared); the fault-campaign per-point journal restricts
//! itself to deterministic fields so its stream is byte-identical
//! across `--jobs` worker counts.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::time::Instant;

use xpipes_sim::Json;

/// Default heartbeat cadence for chunked workload runs, in cycles.
pub const DEFAULT_PROGRESS_INTERVAL: u64 = 5_000;

/// An NDJSON sink for progress heartbeats: one rendered [`Json`] object
/// per line, flushed per line so `tail -f` sees live output. `-` streams
/// to stderr (stdout stays reserved for the human-readable summary).
pub struct ProgressStream {
    out: BufWriter<Box<dyn Write>>,
    /// Heartbeat cadence in cycles for chunked runs.
    pub interval: u64,
    start: Instant,
}

impl ProgressStream {
    /// Opens (truncates) `path` as the NDJSON sink, or stderr for `-`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: &str) -> io::Result<Self> {
        let out: Box<dyn Write> = if path == "-" {
            Box::new(io::stderr())
        } else {
            Box::new(File::create(path)?)
        };
        Ok(ProgressStream {
            out: BufWriter::new(out),
            interval: DEFAULT_PROGRESS_INTERVAL,
            start: Instant::now(),
        })
    }

    /// Opens `path` for appending (creating it if absent), or stderr for
    /// `-`. Used by sinks that accumulate history across processes — the
    /// run ledger, and progress journals of resumed campaigns — where
    /// truncation would destroy the very record being extended.
    ///
    /// # Errors
    ///
    /// Propagates file-open failures.
    pub fn append(path: &str) -> io::Result<Self> {
        let out: Box<dyn Write> = if path == "-" {
            Box::new(io::stderr())
        } else {
            Box::new(OpenOptions::new().append(true).create(true).open(path)?)
        };
        Ok(ProgressStream {
            out: BufWriter::new(out),
            interval: DEFAULT_PROGRESS_INTERVAL,
            start: Instant::now(),
        })
    }

    /// Overrides the heartbeat cadence (cycles per heartbeat).
    #[must_use]
    pub fn with_interval(mut self, interval: u64) -> Self {
        self.interval = interval.max(1);
        self
    }

    /// Appends one NDJSON line. Best-effort: a broken sink must never
    /// fail the run it is observing, so write errors are swallowed.
    pub fn emit(&mut self, line: &Json) {
        let _ = writeln!(self.out, "{}", line.render_compact());
        let _ = self.out.flush();
    }

    /// Wall-clock seconds since the stream was opened.
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// How [`open_sink`] opens a file sink: truncating for fresh progress
/// journals, appending for history-accumulating sinks (ledger, resumed
/// campaign journals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkMode {
    /// Start a fresh journal (`File::create` semantics).
    Truncate,
    /// Extend an existing journal, creating it if absent.
    Append,
}

/// Shared `--progress`/`--ledger` sink opening for the bench binaries:
/// `None` stays `None`, `-` streams to stderr, any other value names a
/// file opened per `mode`. On failure the returned message follows the
/// one-line error contract (the caller prefixes `error: ` and exits 2,
/// exactly as with [`crate::baseline::load_baseline`]).
///
/// # Errors
///
/// Returns `cannot open <what> sink <path>: <cause>` when the file
/// cannot be opened.
pub fn open_sink(
    path: Option<&str>,
    what: &str,
    mode: SinkMode,
) -> Result<Option<ProgressStream>, String> {
    let Some(path) = path else { return Ok(None) };
    let opened = match mode {
        SinkMode::Truncate => ProgressStream::create(path),
        SinkMode::Append => ProgressStream::append(path),
    };
    match opened {
        Ok(stream) => Ok(Some(stream)),
        Err(e) => Err(format!("cannot open {what} sink {path}: {e}")),
    }
}

/// Fixed-precision rate fields for heartbeat lines: `cycles_per_sec`
/// and, when `remaining` cycles are known and progress is being made,
/// an `eta_s` estimate (otherwise `null`).
pub fn rate_fields(cycle: u64, elapsed_s: f64, remaining: Option<u64>) -> (Json, Json) {
    let cps = if elapsed_s > 0.0 {
        cycle as f64 / elapsed_s
    } else {
        0.0
    };
    let eta = match remaining {
        Some(rem) if cps > 0.0 => Json::Fixed(rem as f64 / cps, 1),
        _ => Json::Null,
    };
    (Json::Fixed(cps, 0), eta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_writes_one_object_per_line() {
        let dir = std::env::temp_dir().join("xpipes_progress_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("progress.ndjson");
        let path_str = path.to_str().unwrap();
        {
            let mut p = ProgressStream::create(path_str).unwrap().with_interval(100);
            assert_eq!(p.interval, 100);
            p.emit(&Json::object().field("cycle", Json::UInt(1)).build());
            p.emit(&Json::object().field("cycle", Json::UInt(2)).build());
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            Json::parse(line).expect("each line is a standalone JSON object");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_mode_extends_instead_of_truncating() {
        let dir = std::env::temp_dir().join("xpipes_progress_append_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.ndjson");
        let path_str = path.to_str().unwrap();
        std::fs::remove_file(&path).ok();
        {
            let mut p = ProgressStream::append(path_str).unwrap();
            p.emit(&Json::object().field("run", Json::UInt(1)).build());
        }
        {
            let mut p = ProgressStream::append(path_str).unwrap();
            p.emit(&Json::object().field("run", Json::UInt(2)).build());
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "second open must not truncate");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_sink_contract() {
        assert!(open_sink(None, "progress", SinkMode::Truncate)
            .unwrap()
            .is_none());
        let err = match open_sink(
            Some("/nonexistent-dir/x.ndjson"),
            "ledger",
            SinkMode::Append,
        ) {
            Err(e) => e,
            Ok(_) => panic!("opening a sink in a nonexistent directory must fail"),
        };
        assert!(
            err.starts_with("cannot open ledger sink /nonexistent-dir/x.ndjson: "),
            "one-line error contract: {err}"
        );
        let dir = std::env::temp_dir().join("xpipes_open_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sink.ndjson");
        let opened = open_sink(path.to_str(), "progress", SinkMode::Truncate).unwrap();
        assert!(opened.is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rate_fields_handle_zero_elapsed_and_unknown_remaining() {
        let (cps, eta) = rate_fields(100, 0.0, Some(50));
        assert_eq!(cps, Json::Fixed(0.0, 0));
        assert_eq!(eta, Json::Null);
        let (cps, eta) = rate_fields(100, 2.0, Some(50));
        assert_eq!(cps, Json::Fixed(50.0, 0));
        assert_eq!(eta, Json::Fixed(1.0, 1));
        let (_, eta) = rate_fields(100, 2.0, None);
        assert_eq!(eta, Json::Null);
    }
}
