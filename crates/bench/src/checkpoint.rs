//! Warm-start sweep benchmark.
//!
//! Quantifies what the checkpoint/restore subsystem buys: a load–latency
//! sweep that warms up once and branches every operating point off the
//! shared checkpoint ([`xpipes_traffic::sweep_from_checkpoint`]) versus
//! the classic sweep that re-warms from cold at every point. The
//! speedup is roughly `n·(warmup + window) / (warmup + n·window)` for an
//! n-point curve; the `checkpoint_bench` binary records it in
//! `BENCH_checkpoint.json` and `--check` gates CI on regressions.

use std::time::Instant;

use xpipes::XpipesError;
use xpipes_sim::Json;
use xpipes_traffic::pattern::Pattern;
use xpipes_traffic::{sweep, sweep_from_checkpoint, sweep_warm_up, LoadPoint};

use crate::cycle_engine::reference_spec;
use crate::progress::ProgressStream;

/// Default benchmark parameters: a 6-point curve where warm-up matches
/// the measurement window, so the warm-start path skips roughly half
/// the simulated cycles.
pub const DEFAULT_RATES: [f64; 6] = [0.01, 0.02, 0.03, 0.04, 0.05, 0.06];
/// Default warm-up cycles (per point when cold; once when warm).
pub const DEFAULT_WARMUP: u64 = 4000;
/// Default measurement window cycles per point.
pub const DEFAULT_WINDOW: u64 = 4000;
/// Default seed.
pub const DEFAULT_SEED: u64 = 42;

/// One measured cold-vs-warm sweep comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointBench {
    /// Offered loads swept.
    pub rates: Vec<f64>,
    /// Warm-up cycles.
    pub warmup: u64,
    /// Measurement window cycles.
    pub window: u64,
    /// Wall-clock seconds of the cold sweep (warm-up at every point).
    pub cold_s: f64,
    /// Wall-clock seconds of the warm-start sweep, **including** the
    /// one-off warm-up and checkpoint capture.
    pub warm_s: f64,
    /// `cold_s / warm_s`.
    pub speedup: f64,
    /// The warm-start curve (recorded so the benchmark also documents
    /// the protocol's output).
    pub warm_points: Vec<LoadPoint>,
}

/// Runs the cold sweep and the warm-start sweep over the same rates on
/// the reference 4x4 mesh and measures both wall-clocks.
///
/// # Errors
///
/// Propagates network construction errors.
pub fn run_checkpoint_bench(
    rates: &[f64],
    warmup: u64,
    window: u64,
    seed: u64,
) -> Result<CheckpointBench, XpipesError> {
    run_checkpoint_bench_observed(rates, warmup, window, seed, None)
}

/// [`run_checkpoint_bench`] with stage-level NDJSON progress lines
/// (`cold_sweep` / `warm_up` / `warm_sweep` start/done, then a final
/// summary line). Progress is stage-granular rather than per-cycle
/// because the sweep calls are the timed quantity under benchmark —
/// chunking them would perturb the very wall-clocks being compared.
///
/// # Errors
///
/// Propagates network construction errors.
pub fn run_checkpoint_bench_observed(
    rates: &[f64],
    warmup: u64,
    window: u64,
    seed: u64,
    mut progress: Option<&mut ProgressStream>,
) -> Result<CheckpointBench, XpipesError> {
    let spec = reference_spec();
    let warm_rate = rates.get(rates.len() / 2).copied().unwrap_or(0.03);
    let stage = |p: &mut Option<&mut ProgressStream>, name: &str, status: &str| {
        if let Some(p) = p.as_deref_mut() {
            p.emit(
                &Json::object()
                    .field("stage", Json::str(name))
                    .field("status", Json::str(status))
                    .field("points", Json::UInt(rates.len() as u64))
                    .field("elapsed_s", Json::Fixed(p.elapsed_s(), 3))
                    .build(),
            );
        }
    };

    stage(&mut progress, "cold_sweep", "start");
    let start = Instant::now();
    sweep(&spec, Pattern::Uniform, rates, warmup, window, seed)?;
    let cold_s = start.elapsed().as_secs_f64();
    stage(&mut progress, "cold_sweep", "done");

    stage(&mut progress, "warm_up", "start");
    let start = Instant::now();
    let warm = sweep_warm_up(&spec, Pattern::Uniform, warm_rate, warmup, seed)?;
    stage(&mut progress, "warm_up", "done");
    stage(&mut progress, "warm_sweep", "start");
    let warm_points = sweep_from_checkpoint(&spec, &warm, rates, window, seed)?;
    let warm_s = start.elapsed().as_secs_f64();
    stage(&mut progress, "warm_sweep", "done");

    let bench = CheckpointBench {
        rates: rates.to_vec(),
        warmup,
        window,
        cold_s,
        warm_s,
        speedup: cold_s / warm_s,
        warm_points,
    };
    if let Some(p) = progress {
        p.emit(
            &Json::object()
                .field("stage", Json::str("report"))
                .field("status", Json::str("done"))
                .field("cold_s", Json::Fixed(bench.cold_s, 3))
                .field("warm_s", Json::Fixed(bench.warm_s, 3))
                .field("speedup", Json::Fixed(bench.speedup, 2))
                .field("final", Json::Bool(true))
                .build(),
        );
    }
    Ok(bench)
}

/// Renders the benchmark report written to `BENCH_checkpoint.json`.
pub fn checkpoint_bench_json(b: &CheckpointBench) -> Json {
    let points = b
        .warm_points
        .iter()
        .map(|p| {
            Json::object()
                .field("offered", Json::Fixed(p.offered, 4))
                .field("accepted", Json::Fixed(p.accepted_packets_per_cycle, 5))
                .field("avg_latency", Json::Fixed(p.avg_latency_cycles, 2))
                .build()
        })
        .collect();
    Json::object()
        .field("bench", Json::str("checkpoint_warm_start"))
        .field(
            "rates",
            Json::Array(b.rates.iter().map(|&r| Json::Fixed(r, 4)).collect()),
        )
        .field("warmup_cycles", Json::UInt(b.warmup))
        .field("window_cycles", Json::UInt(b.window))
        .field("cold_sweep_s", Json::Fixed(b.cold_s, 4))
        .field("warm_sweep_s", Json::Fixed(b.warm_s, 4))
        .field("speedup", Json::Fixed(b.speedup, 3))
        .field("warm_points", Json::Array(points))
        .build()
}

/// Extracts `"speedup"` from a rendered report (what the CI regression
/// gate compares against; the format is owned by
/// [`checkpoint_bench_json`], so positional scanning is safe).
pub fn parse_speedup(report: &str) -> Option<f64> {
    let key_pos = report.find("\"speedup\":")?;
    let after = report[key_pos + "\"speedup\":".len()..].trim_start();
    let end = after
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_warm_start_wins() {
        // Small but real: 3 points, warm-up as long as the window, so
        // the warm path simulates ~(3·2)/(1+3) = 1.5x fewer cycles.
        let b = run_checkpoint_bench(&[0.01, 0.03, 0.05], 2000, 2000, 7).unwrap();
        assert_eq!(b.warm_points.len(), 3);
        assert!(b.cold_s > 0.0 && b.warm_s > 0.0);
        assert!(b.speedup > 1.0, "warm-start sweep should beat cold: {b:?}");
        for p in &b.warm_points {
            assert!(p.accepted_packets_per_cycle > 0.0, "{p:?}");
        }
    }

    #[test]
    fn report_round_trips_speedup() {
        let b = CheckpointBench {
            rates: vec![0.01],
            warmup: 100,
            window: 100,
            cold_s: 2.0,
            warm_s: 1.0,
            speedup: 2.0,
            warm_points: vec![],
        };
        let text = checkpoint_bench_json(&b).render();
        assert_eq!(parse_speedup(&text), Some(2.0));
        assert!(parse_speedup("{}").is_none());
    }
}
