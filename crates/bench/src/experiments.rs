//! Experiment implementations, one function per paper table/figure.
//!
//! Ids (E1..E9, A1..A3, P1) follow the index in DESIGN.md. Every function
//! is deterministic for a given seed so benches and tests agree.

use xpipes::config::{NiConfig, SwitchConfig};
use xpipes::noc::Noc;
use xpipes::XpipesError;
use xpipes_ocp::Request;
use xpipes_sunmap::eval::{evaluate, EvalConfig, EvalError};
use xpipes_sunmap::selection::{custom_topology, SelectionConfig};
use xpipes_sunmap::{apps, build_spec, map_to_mesh};
use xpipes_synth::components::{initiator_ni_netlist, switch_netlist, target_ni_netlist};
use xpipes_synth::report::{synthesize, synthesize_max_speed, SynthError, SynthReport};
use xpipes_topology::builders::mesh;
use xpipes_topology::spec::{Arbitration, NocSpec};
use xpipes_topology::{NiId, NiKind};
use xpipes_traffic::pattern::Pattern;
use xpipes_traffic::runner::{sweep_parallel, LoadPoint};

/// The paper's flit-width sweep.
pub const FLIT_WIDTHS: [u32; 4] = [16, 32, 64, 128];

/// The paper's clock target: 1 GHz at 130 nm.
pub const TARGET_MHZ: f64 = 1000.0;

fn synth_or_best(netlist: &xpipes_synth::Netlist, target: f64) -> Result<SynthReport, SynthError> {
    match synthesize(netlist, target) {
        Ok(r) => Ok(r),
        Err(SynthError::TargetUnreachable { .. }) => synthesize_max_speed(netlist),
        Err(e) => Err(e),
    }
}

// ---------------------------------------------------------------- E1/E2

/// One row of the NI synthesis tables (E1 area, E2 power).
#[derive(Debug, Clone)]
pub struct NiRow {
    /// Flit width in bits.
    pub flit_width: u32,
    /// Initiator NI report.
    pub initiator: SynthReport,
    /// Target NI report.
    pub target: SynthReport,
}

/// E1 + E2: NI synthesis area and power across the flit-width sweep.
///
/// # Errors
///
/// Propagates synthesis failures.
pub fn ni_synthesis(widths: &[u32]) -> Result<Vec<NiRow>, SynthError> {
    widths
        .iter()
        .map(|&w| {
            let cfg = NiConfig::new(w);
            Ok(NiRow {
                flit_width: w,
                initiator: synth_or_best(&initiator_ni_netlist(&cfg), TARGET_MHZ)?,
                target: synth_or_best(&target_ni_netlist(&cfg), TARGET_MHZ)?,
            })
        })
        .collect()
}

// ---------------------------------------------------------------- E3/E4/E9

/// One row of the switch synthesis tables.
#[derive(Debug, Clone)]
pub struct SwitchRow {
    /// Input ports.
    pub inputs: usize,
    /// Output ports.
    pub outputs: usize,
    /// Flit width in bits.
    pub flit_width: u32,
    /// Report at the 1 GHz target (or max speed when unreachable).
    pub report: SynthReport,
    /// Maximum achievable frequency in MHz.
    pub fmax_mhz: f64,
}

/// E3 + E4 + E9: switch synthesis area, power and achievable frequency
/// for the paper's switch configurations across the flit-width sweep.
///
/// # Errors
///
/// Propagates synthesis failures.
pub fn switch_synthesis(
    configs: &[(usize, usize)],
    widths: &[u32],
) -> Result<Vec<SwitchRow>, SynthError> {
    let mut rows = Vec::new();
    for &(inputs, outputs) in configs {
        for &w in widths {
            let netlist = switch_netlist(&SwitchConfig::new(inputs, outputs, w));
            let report = synth_or_best(&netlist, TARGET_MHZ)?;
            let max = synthesize_max_speed(&netlist)?;
            rows.push(SwitchRow {
                inputs,
                outputs,
                flit_width: w,
                report,
                fmax_mhz: max.fmax_mhz,
            });
        }
    }
    Ok(rows)
}

// ---------------------------------------------------------------- E5

/// The mesh case study (E5): per-component area across flit widths plus
/// the 3x4-mesh total for the D26 media SoC (8 processors, 11 slaves).
#[derive(Debug, Clone)]
pub struct MeshCaseStudy {
    /// Component areas per flit width: (width, initiator NI, target NI,
    /// 4x4 switch, 6x4 switch) in mm².
    pub component_rows: Vec<(u32, f64, f64, f64, f64)>,
    /// Total D26 mesh area (switches + NIs) per flit width, in mm².
    /// The paper's ~2.6 mm² claim falls between the 32- and 64-bit
    /// configurations of our calibrated model.
    pub mesh_totals_mm2: Vec<(u32, f64)>,
    /// Achievable frequency of the 4x4 switch in MHz.
    pub fmax_4x4_mhz: f64,
    /// Achievable frequency of the 6x4 switch in MHz.
    pub fmax_6x4_mhz: f64,
    /// Achievable frequency of the initiator NI in MHz.
    pub fmax_ni_mhz: f64,
}

/// E5: reproduces the "Power of Abstraction: Mesh Case Study" figure.
///
/// # Errors
///
/// Propagates synthesis and mapping failures.
pub fn mesh_case_study() -> Result<MeshCaseStudy, EvalError> {
    let mut component_rows = Vec::new();
    for &w in &FLIT_WIDTHS {
        let ini = synth_or_best(&initiator_ni_netlist(&NiConfig::new(w)), TARGET_MHZ)?;
        let tgt = synth_or_best(&target_ni_netlist(&NiConfig::new(w)), TARGET_MHZ)?;
        let s44 = synth_or_best(&switch_netlist(&SwitchConfig::new(4, 4, w)), TARGET_MHZ)?;
        let s64 = synth_or_best(&switch_netlist(&SwitchConfig::new(6, 4, w)), TARGET_MHZ)?;
        component_rows.push((w, ini.area_mm2, tgt.area_mm2, s44.area_mm2, s64.area_mm2));
    }

    // The 2.6 mm² claim: D26 (8 processors + 11 slaves) on a 3x4 mesh,
    // totalled for the two plausible widths of the case study.
    let graph = apps::d26_media_soc()?;
    let mapping = map_to_mesh(&graph, 3, 4, 2, 1).map_err(XpipesError::from)?;
    let mut mesh_totals_mm2 = Vec::new();
    for w in [32u32, 64] {
        let spec = build_spec(&graph, &mapping, w).map_err(XpipesError::from)?;
        let mut total = 0.0;
        let mut radix_cache = std::collections::HashMap::new();
        for s in spec.topology.switches() {
            let radix = spec.topology.switch_degree(s).max(2);
            if let std::collections::hash_map::Entry::Vacant(e) = radix_cache.entry(radix) {
                let cfg = SwitchConfig::new(radix, radix, w);
                e.insert(synth_or_best(&switch_netlist(&cfg), TARGET_MHZ)?);
            }
            total += radix_cache[&radix].area_mm2;
        }
        let ini = synth_or_best(&initiator_ni_netlist(&NiConfig::new(w)), TARGET_MHZ)?;
        let tgt = synth_or_best(&target_ni_netlist(&NiConfig::new(w)), TARGET_MHZ)?;
        total += ini.area_mm2 * spec.topology.nis_of_kind(NiKind::Initiator).count() as f64;
        total += tgt.area_mm2 * spec.topology.nis_of_kind(NiKind::Target).count() as f64;
        mesh_totals_mm2.push((w, total));
    }

    let max44 = synthesize_max_speed(&switch_netlist(&SwitchConfig::new(4, 4, 32)))?;
    let max64 = synthesize_max_speed(&switch_netlist(&SwitchConfig::new(6, 4, 32)))?;
    let maxni = synthesize_max_speed(&initiator_ni_netlist(&NiConfig::new(32)))?;
    Ok(MeshCaseStudy {
        component_rows,
        mesh_totals_mm2,
        fmax_4x4_mhz: max44.fmax_mhz,
        fmax_6x4_mhz: max64.fmax_mhz,
        fmax_ni_mhz: maxni.fmax_mhz,
    })
}

// ---------------------------------------------------------------- E6

/// E6: the 32-bit 5x5 switch area-vs-frequency tradeoff ("Full Custom vs
/// Macro Based NoCs" figure). Returns (target MHz, area mm², met?).
///
/// # Errors
///
/// Propagates synthesis failures other than unreachable targets (those
/// are reported with `met == false` at the best-effort area).
pub fn freq_area_tradeoff(targets_mhz: &[f64]) -> Result<Vec<(f64, f64, bool)>, SynthError> {
    let netlist = switch_netlist(&SwitchConfig::new(5, 5, 32));
    targets_mhz
        .iter()
        .map(|&mhz| match synthesize(&netlist, mhz) {
            Ok(r) => Ok((mhz, r.area_mm2, true)),
            Err(SynthError::TargetUnreachable { .. }) => {
                let best = synthesize_max_speed(&netlist)?;
                Ok((mhz, best.area_mm2, false))
            }
            Err(e) => Err(e),
        })
        .collect()
}

// ---------------------------------------------------------------- E7

/// One candidate row of the topology comparison (E7).
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Candidate name.
    pub name: String,
    /// Switch-fabric area only (mm²) — the paper's comparison numbers.
    pub fabric_area_mm2: f64,
    /// Total area including NIs (mm²).
    pub total_area_mm2: f64,
    /// Operating frequency (MHz).
    pub fmax_mhz: f64,
    /// Mean transaction latency in cycles.
    pub latency_cycles: f64,
    /// Mean transaction latency in nanoseconds.
    pub latency_ns: f64,
    /// Accepted throughput, packets per microsecond.
    pub throughput_pkt_per_us: f64,
}

/// E7: "Shift Efforts at a Higher Abstraction Layer" — mesh variants vs a
/// custom application-specific topology for the VOPD decoder.
///
/// # Errors
///
/// Propagates evaluation failures when every candidate fails.
pub fn topology_comparison(eval: &EvalConfig) -> Result<Vec<ComparisonRow>, EvalError> {
    let graph = apps::vopd()?;
    let mut rows = Vec::new();

    let mut add = |name: &str, spec: &NocSpec| -> Result<(), EvalError> {
        let report = evaluate(name, spec, &graph, eval)?;
        // Fabric-only area: per-switch synthesis at the actual radix.
        let mut fabric = 0.0;
        let mut cache = std::collections::HashMap::new();
        for s in spec.topology.switches() {
            let radix = spec.topology.switch_degree(s).max(2);
            if let std::collections::hash_map::Entry::Vacant(e) = cache.entry(radix) {
                let cfg = SwitchConfig::new(radix, radix, spec.flit_width);
                e.insert(synth_or_best(&switch_netlist(&cfg), eval.target_mhz)?);
            }
            fabric += cache[&radix].area_mm2;
        }
        rows.push(ComparisonRow {
            name: name.to_string(),
            fabric_area_mm2: fabric,
            total_area_mm2: report.area_mm2,
            fmax_mhz: report.fmax_mhz,
            latency_cycles: report.avg_latency_cycles,
            latency_ns: report.avg_latency_ns,
            throughput_pkt_per_us: report.accepted_packets_per_us,
        });
        Ok(())
    };

    // Candidate A: a 3x4 mesh, one core per switch (fast, big).
    let m34 = map_to_mesh(&graph, 3, 4, 1, 7).map_err(XpipesError::from)?;
    let spec_a = build_spec(&graph, &m34, 32).map_err(XpipesError::from)?;
    add("mesh3x4", &spec_a)?;

    // Candidate B: a 2x3 mesh, two cores per switch (smaller, slower).
    let m23 = map_to_mesh(&graph, 2, 3, 2, 7).map_err(XpipesError::from)?;
    let spec_b = build_spec(&graph, &m23, 32).map_err(XpipesError::from)?;
    add("mesh2x3", &spec_b)?;

    // Candidate C: custom clustered topology (fewest cycles, slower clock
    // from its higher-radix switches).
    let spec_c = custom_topology(&graph, 32, 3)?;
    add("custom", &spec_c)?;

    Ok(rows)
}

/// The default evaluation config used by E7's bench output. The clock
/// target sits above every component's reach so candidates run at their
/// *achievable* frequency — that is where the paper's mesh-vs-custom
/// clock gap (925/850 vs 780 MHz) comes from.
pub fn e7_eval_config() -> EvalConfig {
    EvalConfig {
        warmup: 500,
        window: 4000,
        target_mhz: 1600.0,
        ..EvalConfig::default()
    }
}

/// Convenience: run the full SunMap selection on an app (bench display).
///
/// # Errors
///
/// Propagates evaluation failures when every candidate fails.
pub fn run_selection(app: &str) -> Result<xpipes_sunmap::selection::SelectionOutcome, EvalError> {
    let graph = match app {
        "mpeg4" => apps::mpeg4_decoder(),
        "vopd" => apps::vopd(),
        "mwd" => apps::mwd(),
        "pip" => apps::pip(),
        "h263enc" => apps::h263_enc_mp3_dec(),
        _ => apps::d26_media_soc(),
    }?;
    let mut cfg = SelectionConfig::default();
    cfg.eval.warmup = 300;
    cfg.eval.window = 2000;
    xpipes_sunmap::selection::select(&graph, &cfg)
}

// ---------------------------------------------------------------- E8

/// E8: switch pipeline comparison — xpipes Lite (2-stage) vs the
/// first-generation 7-stage switch.
#[derive(Debug, Clone, Copy)]
pub struct PipelineLatency {
    /// Read round-trip latency through the 2-stage network, in cycles.
    pub lite_cycles: f64,
    /// The same transaction through 7-stage switches, in cycles.
    pub legacy_cycles: f64,
}

/// E8: measures one read transaction crossing a 2x1 mesh under both
/// switch generations.
///
/// # Errors
///
/// Propagates network construction failures.
pub fn pipeline_latency() -> Result<PipelineLatency, XpipesError> {
    let run = |extra: u32| -> Result<f64, XpipesError> {
        let mut b = mesh(2, 1)?;
        let cpu = b.attach_initiator("cpu", (0, 0))?;
        let mem = b.attach_target("mem", (1, 0))?;
        let mut spec = NocSpec::new("pipe", b.into_topology());
        spec.map_address(mem, 0, 1 << 16)?;
        spec.extra_switch_stages = extra;
        let mut noc = Noc::new(&spec)?;
        noc.submit(cpu, Request::read(0x0, 1)?)?;
        noc.run_until_idle(10_000);
        Ok(noc.stats().transaction_latency.mean())
    };
    Ok(PipelineLatency {
        lite_cycles: run(0)?,
        legacy_cycles: run(5)?,
    })
}

// ---------------------------------------------------------------- P1

/// A standard evaluation mesh: `k`x`k` with one initiator and one target
/// per column edge.
///
/// # Errors
///
/// Propagates topology-construction failures.
pub fn eval_mesh(k: usize) -> Result<NocSpec, XpipesError> {
    let mut b = mesh(k, k)?;
    let mut targets = Vec::new();
    for i in 0..k {
        b.attach_initiator(format!("cpu{i}"), (i, 0))?;
        targets.push(b.attach_target(format!("mem{i}"), (i, k - 1))?);
    }
    let mut spec = NocSpec::new(format!("mesh{k}x{k}"), b.into_topology());
    for (i, t) in targets.into_iter().enumerate() {
        spec.map_address(t, (i as u64) << 20, 1 << 20)?;
    }
    Ok(spec)
}

/// P1: load–latency curve on a 4x4 mesh. Operating points run on the
/// deterministic work pool; results match a serial sweep exactly.
///
/// # Errors
///
/// Propagates network construction failures.
pub fn load_latency(pattern: Pattern, rates: &[f64]) -> Result<Vec<LoadPoint>, XpipesError> {
    let spec = eval_mesh(4)?;
    sweep_parallel(&spec, pattern, rates, 1000, 6000, 0xBEEF)
}

// ---------------------------------------------------------------- A1

/// A1 row: arbitration-policy ablation.
#[derive(Debug, Clone, Copy)]
pub struct ArbitrationRow {
    /// Policy measured.
    pub policy: Arbitration,
    /// Mean latency in cycles.
    pub mean_latency: f64,
    /// Worst per-initiator mean latency (unfairness indicator).
    pub worst_initiator_latency: f64,
    /// Best per-initiator mean latency.
    pub best_initiator_latency: f64,
}

/// A1: fixed-priority vs round-robin arbitration under hotspot traffic.
///
/// # Errors
///
/// Propagates network construction failures.
pub fn ablation_arbitration(rate: f64) -> Result<Vec<ArbitrationRow>, XpipesError> {
    let mut rows = Vec::new();
    for policy in [Arbitration::Fixed, Arbitration::RoundRobin] {
        let mut spec = eval_mesh(4)?;
        spec.arbitration = policy;
        let mut noc = Noc::with_seed(&spec, 77)?;
        let mut inj = xpipes_traffic::Injector::new(
            &spec,
            xpipes_traffic::InjectorConfig::new(
                rate,
                Pattern::Hotspot {
                    target: 0,
                    fraction: 0.7,
                },
            ),
            99,
        )?;
        inj.run(&mut noc, 8000);
        inj.drain_responses(&mut noc);
        let initiators: Vec<NiId> = spec
            .topology
            .nis_of_kind(NiKind::Initiator)
            .map(|a| a.ni)
            .collect();
        let per_ni: Vec<f64> = initiators
            .iter()
            .filter_map(|&ni| {
                let s = noc.initiator_stats(ni)?;
                (s.latency.count() > 0).then(|| s.latency.mean())
            })
            .collect();
        let worst = per_ni.iter().copied().fold(0.0, f64::max);
        let best = per_ni.iter().copied().fold(f64::INFINITY, f64::min);
        rows.push(ArbitrationRow {
            policy,
            mean_latency: noc.stats().transaction_latency.mean(),
            worst_initiator_latency: worst,
            best_initiator_latency: best,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------- A2

/// A2 row: ACK/nACK under link errors.
#[derive(Debug, Clone, Copy)]
pub struct AckNackRow {
    /// Injected flit error rate.
    pub error_rate: f64,
    /// Packets delivered in the window.
    pub delivered: u64,
    /// Retransmitted flits.
    pub retransmissions: u64,
    /// Mean latency in cycles.
    pub mean_latency: f64,
}

/// A2: error-rate sweep showing lossless delivery at rising
/// retransmission cost.
///
/// # Errors
///
/// Propagates network construction failures.
pub fn ablation_acknack(error_rates: &[f64]) -> Result<Vec<AckNackRow>, XpipesError> {
    let mut rows = Vec::new();
    for &er in error_rates {
        let mut spec = eval_mesh(3)?;
        spec.link_error_rate = er;
        let mut noc = Noc::with_seed(&spec, 123)?;
        let mut inj = xpipes_traffic::Injector::new(
            &spec,
            xpipes_traffic::InjectorConfig::new(0.01, Pattern::Uniform),
            321,
        )?;
        inj.run(&mut noc, 6000);
        noc.run_until_idle(200_000);
        inj.drain_responses(&mut noc);
        let stats = noc.stats();
        rows.push(AckNackRow {
            error_rate: er,
            delivered: stats.packets_delivered,
            retransmissions: stats.retransmissions,
            mean_latency: stats.transaction_latency.mean(),
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------- A3

/// A3 row: output-queue depth ablation.
#[derive(Debug, Clone, Copy)]
pub struct BufferRow {
    /// Output queue depth in flits.
    pub depth: u32,
    /// Accepted throughput at heavy load, packets per cycle.
    pub accepted: f64,
    /// Mean latency in cycles.
    pub mean_latency: f64,
    /// Area of a 4x4 32-bit switch at this depth, mm².
    pub switch_area_mm2: f64,
}

/// A3: queue depth vs saturation throughput (and its area price).
///
/// # Errors
///
/// Propagates network construction or synthesis failures.
pub fn ablation_buffers(depths: &[u32]) -> Result<Vec<BufferRow>, EvalError> {
    let mut rows = Vec::new();
    for &d in depths {
        let mut spec = eval_mesh(4)?;
        spec.output_queue_depth = d;
        let point = xpipes_traffic::measure(&spec, Pattern::Uniform, 0.10, 1000, 6000, 9)
            .map_err(EvalError::from)?;
        let mut cfg = SwitchConfig::new(4, 4, 32);
        cfg.output_queue_depth = d as usize;
        let area = synth_or_best(&switch_netlist(&cfg), TARGET_MHZ)?.area_mm2;
        rows.push(BufferRow {
            depth: d,
            accepted: point.accepted_packets_per_cycle,
            mean_latency: point.avg_latency_cycles,
            switch_area_mm2: area,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------- A4

/// A4 row: link pipeline depth ablation.
#[derive(Debug, Clone, Copy)]
pub struct LinkPipelineRow {
    /// Pipeline stages per link.
    pub stages: u32,
    /// Mean transaction latency in cycles at light load.
    pub mean_latency: f64,
    /// Wire length one stage can cover within a 1 GHz cycle, in mm
    /// (500 ps/mm at 130 nm; pipelining is what lets links span tiles).
    pub reach_mm_at_1ghz: f64,
    /// Retransmission-buffer flits required per output port (the
    /// ACK/nACK window grows with round-trip depth).
    pub retransmit_depth: usize,
}

/// A4: the paper's links are *pipelined* — deeper pipes reach further at
/// speed but cost latency and retransmission buffering.
///
/// # Errors
///
/// Propagates network construction failures.
pub fn ablation_link_pipeline(stages_list: &[u32]) -> Result<Vec<LinkPipelineRow>, XpipesError> {
    let mut rows = Vec::new();
    for &stages in stages_list {
        let mut b = mesh(3, 1)?;
        let cpu = b.attach_initiator("cpu", (0, 0))?;
        let mem = b.attach_target("mem", (2, 0))?;
        let mut topo = b.into_topology();
        for l in topo.links_mut() {
            l.pipeline_stages = stages;
        }
        let mut spec = NocSpec::new("pipe", topo);
        spec.map_address(mem, 0, 1 << 16)?;
        let mut noc = Noc::new(&spec)?;
        for i in 0..8u64 {
            noc.submit(cpu, Request::read(i * 8, 1)?)?;
        }
        noc.run_until_idle(50_000);
        let cfg = SwitchConfig {
            link_pipeline: stages,
            ..SwitchConfig::new(4, 4, 32)
        };
        rows.push(LinkPipelineRow {
            stages,
            mean_latency: noc.stats().transaction_latency.mean(),
            reach_mm_at_1ghz: stages as f64 * 1000.0 / 500.0,
            retransmit_depth: cfg.retransmit_depth(),
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------- A5

/// A5 row: flit width vs performance and cost.
#[derive(Debug, Clone, Copy)]
pub struct FlitWidthRow {
    /// Flit width in bits.
    pub width: u32,
    /// Mean transaction latency in cycles at light load.
    pub mean_latency: f64,
    /// Flits per 4-beat write packet at this width.
    pub flits_per_packet: usize,
    /// Area of a 4x4 switch at this width, mm².
    pub switch_area_mm2: f64,
}

/// A5: the flit-width knob — wider links serialize packets into fewer
/// flits (lower latency) at a near-linear area cost. This is the
/// performance-side companion of the E5 area sweep.
///
/// # Errors
///
/// Propagates network or synthesis failures.
pub fn ablation_flit_width(widths: &[u32]) -> Result<Vec<FlitWidthRow>, EvalError> {
    let mut rows = Vec::new();
    for &w in widths {
        let mut spec = eval_mesh(3)?;
        spec.flit_width = w;
        let point = xpipes_traffic::measure(&spec, Pattern::Uniform, 0.01, 500, 4000, 21)
            .map_err(EvalError::from)?;
        let area =
            synth_or_best(&switch_netlist(&SwitchConfig::new(4, 4, w)), TARGET_MHZ)?.area_mm2;
        // A representative packet: 4-beat write = header + address + 4 beats.
        let cfg = xpipes::config::NiConfig::new(w);
        let flits = (cfg.header_flits() + 5 * cfg.payload_flits_per_beat()) as usize;
        rows.push(FlitWidthRow {
            width: w,
            mean_latency: point.avg_latency_cycles,
            flits_per_packet: flits,
            switch_area_mm2: area,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_e2_ni_scaling_shapes() {
        let rows = ni_synthesis(&FLIT_WIDTHS).unwrap();
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            // Area and power grow with flit width (E1/E2 shape).
            assert!(w[1].initiator.area_mm2 > w[0].initiator.area_mm2);
            assert!(w[1].target.area_mm2 > w[0].target.area_mm2);
            assert!(w[1].initiator.power_mw > w[0].initiator.power_mw);
        }
        for r in &rows {
            // Initiator NI outweighs target NI at every width.
            assert!(r.initiator.area_mm2 > r.target.area_mm2);
        }
    }

    #[test]
    fn e3_e9_switch_shapes() {
        let rows = switch_synthesis(&[(4, 4), (6, 4)], &[32]).unwrap();
        let s44 = &rows[0];
        let s64 = &rows[1];
        assert!(s64.report.area_mm2 > s44.report.area_mm2);
        // E9: the 4x4 meets 1 GHz; the 6x4 is slower than the 4x4 with a
        // ratio matching the paper's 875–980 MHz vs 1 GHz window.
        assert!(s44.fmax_mhz >= 1000.0);
        let ratio = s64.fmax_mhz / s44.fmax_mhz;
        assert!((0.82..1.0).contains(&ratio), "6x4/4x4 fmax ratio {ratio}");
    }

    #[test]
    fn e6_banana_curve_shape() {
        let pts = freq_area_tradeoff(&[300.0, 900.0, 1200.0, 1400.0]).unwrap();
        // Monotonically non-decreasing area.
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        // Flat floor at relaxed targets, visible rise near fmax.
        assert!(pts[3].1 > pts[0].1 * 1.2, "{} vs {}", pts[3].1, pts[0].1);
        assert!(pts[0].2 && pts[3].2);
    }

    #[test]
    fn a5_flit_width_tradeoff() {
        let rows = ablation_flit_width(&[16, 64]).unwrap();
        assert!(
            rows[0].mean_latency > rows[1].mean_latency,
            "wider flits cut latency"
        );
        assert!(rows[0].flits_per_packet > rows[1].flits_per_packet);
        assert!(
            rows[0].switch_area_mm2 < rows[1].switch_area_mm2,
            "…at an area price"
        );
    }

    #[test]
    fn a4_link_pipeline_tradeoff() {
        let rows = ablation_link_pipeline(&[1, 2, 4]).unwrap();
        for pair in rows.windows(2) {
            assert!(
                pair[1].mean_latency > pair[0].mean_latency,
                "deeper pipes cost latency"
            );
            assert!(pair[1].reach_mm_at_1ghz > pair[0].reach_mm_at_1ghz);
            assert!(pair[1].retransmit_depth > pair[0].retransmit_depth);
        }
    }

    #[test]
    fn e8_pipeline_gain() {
        let p = pipeline_latency().unwrap();
        // 4 switch traversals (2 each way) × 5 extra stages = 20 cycles.
        let delta = p.legacy_cycles - p.lite_cycles;
        assert!((18.0..22.0).contains(&delta), "delta {delta}");
    }
}
