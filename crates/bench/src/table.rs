//! Plain-text table rendering for experiment output.

use std::fmt;

/// A simple aligned-column table.
///
/// # Examples
///
/// ```
/// use xpipes_bench::Table;
///
/// let mut t = Table::new(&["flit", "area (mm²)"]);
/// t.row(&["32", "0.083"]);
/// let text = t.to_string();
/// assert!(text.contains("flit"));
/// assert!(text.contains("0.083"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        let mut row: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Appends a row of already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        let mut row = cells;
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            writeln!(f, "{}", line.trim_end())
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long_header"]);
        t.row(&["wide_cell", "1"]);
        t.row(&["x", "2"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header and rows align: the second column starts at the same
        // offset everywhere.
        let off = lines[0].find("long_header").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), off);
        assert_eq!(lines[3].find('2').unwrap(), off);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let s = t.to_string();
        assert!(s.contains('1'));
    }

    #[test]
    fn row_owned_accepts_strings() {
        let mut t = Table::new(&["v"]);
        t.row_owned(vec![format!("{:.2}", 1.234)]);
        assert!(t.to_string().contains("1.23"));
    }
}
