//! Cycle-engine throughput benchmark.
//!
//! Measures how fast the simulation engine itself runs — cycles per
//! wall-clock second and flits routed per second — on two reference
//! workloads: a 4x4 mesh under uniform-random traffic and the same mesh
//! under hotspot traffic. The workloads are fully seeded, so the *work*
//! (packets injected, flits routed, cycles simulated) is identical across
//! engine versions; only the wall-clock changes. This is the perf
//! baseline future engine changes are judged against: the `cycle_engine`
//! binary writes `BENCH_cycle_engine.json` at the repo root recording
//! both the checked-in pre-overhaul reference numbers and the current
//! measurement.

use std::time::Instant;

use crate::progress::{rate_fields, ProgressStream};
use xpipes::noc::{Noc, TelemetryConfig};
use xpipes::XpipesError;
use xpipes_sim::{Json, KernelHealth, Snapshot, SnapshotReader, SnapshotWriter};
use xpipes_topology::builders::mesh;
use xpipes_topology::spec::NocSpec;
use xpipes_traffic::generator::{Injector, InjectorConfig};
use xpipes_traffic::pattern::Pattern;

/// Seed shared by every reference workload.
pub const BENCH_SEED: u64 = 42;

/// Injection rate (packets per cycle per initiator) of the reference
/// workloads: light enough that the network never saturates, so the
/// engine spends most cycles in the common lightly-loaded regime.
pub const BENCH_RATE: f64 = 0.05;

/// Injection rate of the large-fabric workloads. Sixteen initiators at
/// this rate keep the aggregate offered load below the 4x4 reference
/// (0.16 vs 0.2 packets/cycle), so the big meshes also stay in the
/// lightly-loaded regime the engine is benchmarked in.
pub const BENCH_RATE_LARGE: f64 = 0.01;

/// Default measured cycles per workload.
pub const DEFAULT_CYCLES: u64 = 200_000;

/// Pre-overhaul engine throughput on the reference host (cycles/sec),
/// measured at the commit before the hot-path overhaul with this exact
/// harness. Kept so the report always records the pre/post pair the
/// overhaul is judged against.
pub const PRE_PR_UNIFORM_CYCLES_PER_SEC: f64 = 145_538.0;
/// Pre-overhaul hotspot throughput (cycles/sec) on the reference host.
pub const PRE_PR_HOTSPOT_CYCLES_PER_SEC: f64 = 144_953.0;

/// The reference 4x4 mesh: four initiators along the top row, four
/// targets along the bottom row, each target owning a 1 MiB window.
pub fn reference_spec() -> NocSpec {
    let mut b = mesh(4, 4).expect("4x4 mesh is valid");
    for i in 0..4 {
        b.attach_initiator(format!("cpu{i}"), (i, 0))
            .expect("free port");
    }
    let mut targets = Vec::new();
    for i in 0..4 {
        targets.push(b.attach_target(format!("m{i}"), (i, 3)).expect("free port"));
    }
    let mut spec = NocSpec::new("cycle-engine-4x4", b.into_topology());
    for (i, t) in targets.into_iter().enumerate() {
        spec.map_address(t, (i as u64) << 20, 1 << 20)
            .expect("window fits");
    }
    spec
}

/// A `dim`x`dim` mesh partitioned into sixteen square tiles, each with
/// one central initiator and four tile-local targets placed a Manhattan
/// distance of 6 from it — the longest route (6 switch traversals plus
/// the ejection hop) exactly fills the 7-hop source-route budget, so
/// the same tiling scales to any mesh size. Targets are attached
/// tile-major, 4 per tile, which is the indexing
/// [`Pattern::TileUniform`] assumes.
pub fn tiled_spec(dim: usize, name: &str) -> NocSpec {
    assert!(
        dim.is_multiple_of(4) && dim / 4 >= 8,
        "tiled meshes need a multiple-of-4 dimension with tiles of at least 8x8"
    );
    let tile = dim / 4;
    let mid = tile / 2;
    let (lo, hi) = (mid - 3, mid + 3);
    let mut b = mesh(dim, dim).expect("mesh is valid");
    let mut targets = Vec::new();
    for ty in 0..4 {
        for tx in 0..4 {
            let t = ty * 4 + tx;
            let (ox, oy) = (tx * tile, ty * tile);
            b.attach_initiator(format!("cpu{t}"), (ox + mid, oy + mid))
                .expect("free port");
            for (k, (dx, dy)) in [(lo, lo), (hi, lo), (lo, hi), (hi, hi)]
                .into_iter()
                .enumerate()
            {
                targets.push(
                    b.attach_target(format!("m{}", t * 4 + k), (ox + dx, oy + dy))
                        .expect("free port"),
                );
            }
        }
    }
    let mut spec = NocSpec::new(name, b.into_topology());
    for (i, t) in targets.into_iter().enumerate() {
        spec.map_address(t, (i as u64) << 20, 1 << 20)
            .expect("window fits");
    }
    spec
}

/// The reference workloads: the original 4x4 pair plus the large-fabric
/// tiled meshes that exercise the event-driven kernel at scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Uniform-random destinations on the 4x4 reference mesh.
    UniformRandom,
    /// 50% of traffic aimed at target 0 on the 4x4 reference mesh.
    Hotspot,
    /// Tile-local uniform traffic on a 32x32 mesh (16 tiles of 8x8).
    UniformRandom32,
    /// Tile-local uniform traffic on a 64x64 mesh (16 tiles of 16x16).
    UniformRandom64,
    /// Tile-local hotspot traffic on the 64x64 mesh.
    Hotspot64,
}

/// Every workload, in the canonical report order.
pub const ALL_WORKLOADS: [Workload; 5] = [
    Workload::UniformRandom,
    Workload::Hotspot,
    Workload::UniformRandom32,
    Workload::UniformRandom64,
    Workload::Hotspot64,
];

impl Workload {
    /// Stable machine-readable name (JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Workload::UniformRandom => "uniform_random_4x4",
            Workload::Hotspot => "hotspot_4x4",
            Workload::UniformRandom32 => "uniform_random_32x32",
            Workload::UniformRandom64 => "uniform_random_64x64",
            Workload::Hotspot64 => "hotspot_64x64",
        }
    }

    /// Parses a [`name`](Self::name) back into a workload.
    pub fn from_name(name: &str) -> Option<Workload> {
        ALL_WORKLOADS.into_iter().find(|w| w.name() == name)
    }

    /// The network this workload runs on.
    pub fn spec(self) -> NocSpec {
        match self {
            Workload::UniformRandom | Workload::Hotspot => reference_spec(),
            Workload::UniformRandom32 => tiled_spec(32, "cycle-engine-32x32"),
            Workload::UniformRandom64 | Workload::Hotspot64 => tiled_spec(64, "cycle-engine-64x64"),
        }
    }

    /// Injection rate (packets per cycle per initiator).
    pub fn rate(self) -> f64 {
        match self {
            Workload::UniformRandom | Workload::Hotspot => BENCH_RATE,
            _ => BENCH_RATE_LARGE,
        }
    }

    fn pattern(self) -> Pattern {
        match self {
            Workload::UniformRandom => Pattern::Uniform,
            Workload::Hotspot => Pattern::Hotspot {
                target: 0,
                fraction: 0.5,
            },
            Workload::UniformRandom32 | Workload::UniformRandom64 => Pattern::TileUniform {
                targets_per_tile: 4,
            },
            Workload::Hotspot64 => Pattern::TileHotspot {
                targets_per_tile: 4,
                fraction: 0.5,
            },
        }
    }
}

/// One measured workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadResult {
    /// Workload name.
    pub name: &'static str,
    /// Total cycles simulated (injection + drain).
    pub cycles: u64,
    /// Wall-clock seconds.
    pub elapsed_s: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Flits moved through switch crossbars per wall-clock second.
    pub flits_per_sec: f64,
    /// Flits routed (work fingerprint: must not change across engine
    /// versions for the same seed).
    pub flits_routed: u64,
    /// Packets delivered end to end (work fingerprint).
    pub packets_delivered: u64,
    /// Flit retransmissions over all links (deterministic; excluded
    /// from the work fingerprint, which predates it, but recorded in
    /// the run ledger where the sentinel watches it).
    pub retransmissions: u64,
    /// Kernel dispatch counters for the run (deterministic; excluded
    /// from the work fingerprint, which predates it).
    pub kernel_health: KernelHealth,
}

/// Which observers ride a timed workload run. The default is the bare
/// engine — no telemetry, no attribution, no profiler.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Attach the telemetry layer (metric registry, optional timeline
    /// and flight recorder).
    pub telemetry: Option<TelemetryConfig>,
    /// Attach the per-packet latency attribution ledger.
    pub attribution: bool,
    /// Arm the wall-clock kernel phase profiler.
    pub profile: bool,
}

/// One NDJSON heartbeat line. `remaining` is the known-remaining cycle
/// count (injection phase) or `None` (drain — the end is data-dependent).
/// The `"done"` phase marks the final line of a run.
fn emit_heartbeat(
    p: &mut ProgressStream,
    workload: Workload,
    phase: &str,
    noc: &Noc,
    target: u64,
    remaining: Option<u64>,
    start: Instant,
) {
    let final_line = phase == "done";
    let stats = noc.stats();
    let health = noc.kernel_health();
    let (cps, eta) = rate_fields(stats.cycles, start.elapsed().as_secs_f64(), remaining);
    p.emit(
        &Json::object()
            .field("workload", Json::str(workload.name()))
            .field("phase", Json::str(phase))
            .field("cycle", Json::UInt(stats.cycles))
            .field("target_cycles", Json::UInt(target))
            .field("packets_delivered", Json::UInt(stats.packets_delivered))
            .field("retransmissions", Json::UInt(stats.retransmissions))
            .field("flits_routed", Json::UInt(stats.flits_routed))
            .field("event_steps", Json::UInt(health.event_steps()))
            .field("fallback_steps", Json::UInt(health.fallback_steps()))
            .field("time_jumps", Json::UInt(health.time_jumps()))
            .field("cycles_per_sec", cps)
            .field("eta_s", eta)
            .field("final", Json::Bool(final_line))
            .build(),
    );
}

/// Runs one reference workload for `cycles` injection cycles plus drain,
/// timing the whole simulation. Returns the network alongside the
/// measurement so instrumented callers can export telemetry artifacts.
/// With a progress stream the run is chunked at the stream's heartbeat
/// interval — state-identical to the unchunked run (time jumps are
/// bounded by the remaining chunk instead of the remaining budget, but
/// every skipped cycle is a no-op either way).
fn run_timed(
    workload: Workload,
    cycles: u64,
    opts: &RunOptions,
    mut progress: Option<&mut ProgressStream>,
) -> Result<(Noc, WorkloadResult), XpipesError> {
    let spec = workload.spec();
    let mut noc = Noc::with_seed(&spec, BENCH_SEED)?;
    if let Some(cfg) = &opts.telemetry {
        noc.enable_telemetry(*cfg);
    }
    if opts.attribution {
        noc.enable_attribution();
    }
    if opts.profile {
        noc.enable_profiling();
    }
    let mut inj = Injector::new(
        &spec,
        InjectorConfig::new(workload.rate(), workload.pattern()),
        BENCH_SEED ^ 0x5EED,
    )?;
    let start = Instant::now();
    match progress.as_deref_mut() {
        None => {
            inj.run(&mut noc, cycles);
            noc.run_until_idle(cycles / 2);
        }
        Some(p) => {
            let chunk = p.interval;
            let mut done = 0u64;
            while done < cycles {
                let n = chunk.min(cycles - done);
                inj.run(&mut noc, n);
                done += n;
                emit_heartbeat(
                    p,
                    workload,
                    "inject",
                    &noc,
                    cycles,
                    Some(cycles - done),
                    start,
                );
            }
            let budget = cycles / 2;
            let mut used = 0u64;
            while used < budget {
                let n = chunk.min(budget - used);
                let idle = noc.run_until_idle(n);
                used += n;
                emit_heartbeat(p, workload, "drain", &noc, cycles, None, start);
                if idle {
                    break;
                }
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    inj.drain_responses(&mut noc);
    noc.flush_telemetry();
    let stats = noc.stats();
    if let Some(p) = progress {
        emit_heartbeat(p, workload, "done", &noc, cycles, Some(0), start);
    }
    let total_cycles = stats.cycles;
    let result = WorkloadResult {
        name: workload.name(),
        cycles: total_cycles,
        elapsed_s: elapsed,
        cycles_per_sec: total_cycles as f64 / elapsed,
        flits_per_sec: stats.flits_routed as f64 / elapsed,
        flits_routed: stats.flits_routed,
        packets_delivered: stats.packets_delivered,
        retransmissions: stats.retransmissions,
        kernel_health: noc.kernel_health().clone(),
    };
    Ok((noc, result))
}

/// Runs one reference workload for `cycles` injection cycles plus drain,
/// timing the whole simulation.
///
/// # Errors
///
/// Propagates network-assembly failures.
pub fn run_workload(workload: Workload, cycles: u64) -> Result<WorkloadResult, XpipesError> {
    run_timed(workload, cycles, &RunOptions::default(), None).map(|(_, r)| r)
}

/// A workload measurement with every requested observer's rendered
/// artifact: the one-stop result the `cycle_engine` binary consumes.
#[derive(Debug)]
pub struct ObservedRun {
    /// The timed measurement (work fingerprint unchanged by observers).
    pub result: WorkloadResult,
    /// Rendered metric-registry JSON, when telemetry ran.
    pub registry_json: Option<String>,
    /// Rendered congestion-timeline JSON, when the config collected one.
    pub timeline_json: Option<String>,
    /// Rendered Perfetto trace (flit spans, attribution spans, and
    /// kernel-health counter tracks), when a flight recorder ran.
    pub perfetto_json: Option<String>,
    /// The attribution report, when the ledger ran.
    pub attribution: Option<Json>,
    /// The kernel phase profile, when profiling was armed. Wall-clock
    /// data: emit only in sections excluded from byte comparison.
    pub kernel_profile: Option<Json>,
    /// Per-run telemetry digest (total/per-link retransmissions, peak
    /// queue depth). A pure function of end-of-run counters —
    /// deterministic, available with or without the telemetry layer —
    /// recorded in the run ledger.
    pub telemetry_summary: Json,
}

/// Runs one reference workload with the observers selected in `opts`,
/// streaming NDJSON heartbeats to `progress` when given.
///
/// # Errors
///
/// Propagates network-assembly failures.
pub fn run_workload_observed(
    workload: Workload,
    cycles: u64,
    opts: &RunOptions,
    progress: Option<&mut ProgressStream>,
) -> Result<ObservedRun, XpipesError> {
    let (noc, result) = run_timed(workload, cycles, opts, progress)?;
    Ok(ObservedRun {
        result,
        registry_json: noc.telemetry_registry().map(|r| r.to_json().render()),
        timeline_json: noc.timeline_json(),
        perfetto_json: noc.perfetto_json_with_health(),
        attribution: noc.attribution_report(),
        kernel_profile: noc.kernel_profile().map(|p| p.to_json()),
        telemetry_summary: noc.telemetry_summary().to_json(),
    })
}

/// A workload measurement taken with the telemetry layer attached, plus
/// the rendered observability artifacts it produced.
#[derive(Debug)]
pub struct InstrumentedRun {
    /// The timed measurement (same fields as an uninstrumented run; the
    /// work fingerprint must match it exactly).
    pub result: WorkloadResult,
    /// Rendered metric-registry JSON.
    pub registry_json: String,
    /// Rendered congestion-timeline JSON, when the config collects one.
    pub timeline_json: Option<String>,
    /// Rendered Chrome/Perfetto `trace_event` JSON of the flight
    /// recorder's event window, when the config runs a recorder.
    pub perfetto_json: Option<String>,
}

/// Runs one reference workload with telemetry enabled and returns the
/// measurement together with the rendered artifacts.
///
/// # Errors
///
/// Propagates network-assembly failures.
pub fn run_workload_instrumented(
    workload: Workload,
    cycles: u64,
    config: TelemetryConfig,
) -> Result<InstrumentedRun, XpipesError> {
    let opts = RunOptions {
        telemetry: Some(config),
        ..RunOptions::default()
    };
    let (noc, result) = run_timed(workload, cycles, &opts, None)?;
    Ok(InstrumentedRun {
        result,
        registry_json: noc
            .telemetry_registry()
            .expect("telemetry was enabled")
            .to_json()
            .render(),
        timeline_json: noc.timeline_json(),
        perfetto_json: noc.perfetto_json_with_health(),
    })
}

/// A workload measurement taken with the per-packet attribution ledger
/// attached, plus the attribution report it produced.
#[derive(Debug)]
pub struct AttributedRun {
    /// The timed measurement (the work fingerprint must match an
    /// unattributed run exactly).
    pub result: WorkloadResult,
    /// The full attribution report (`xpipes_sim::attribution` schema),
    /// deterministic for the fixed seed.
    pub attribution: Json,
}

/// Runs one reference workload with the attribution ledger enabled and
/// returns the measurement together with the report.
///
/// # Errors
///
/// Propagates network-assembly failures.
pub fn run_workload_attributed(
    workload: Workload,
    cycles: u64,
) -> Result<AttributedRun, XpipesError> {
    let opts = RunOptions {
        attribution: true,
        ..RunOptions::default()
    };
    let (noc, result) = run_timed(workload, cycles, &opts, None)?;
    Ok(AttributedRun {
        result,
        attribution: noc.attribution_report().expect("attribution was enabled"),
    })
}

/// Runs a reference workload for `checkpoint_at` injection cycles and
/// returns the simulation state as one self-contained checkpoint
/// container (network, injector, and the cycle count), ready for
/// [`resume_workload`] — possibly in a different process.
///
/// # Errors
///
/// Propagates network-assembly failures.
pub fn checkpoint_workload(workload: Workload, checkpoint_at: u64) -> Result<Vec<u8>, XpipesError> {
    let spec = workload.spec();
    let mut noc = Noc::with_seed(&spec, BENCH_SEED)?;
    let mut inj = Injector::new(
        &spec,
        InjectorConfig::new(workload.rate(), workload.pattern()),
        BENCH_SEED ^ 0x5EED,
    )?;
    inj.run(&mut noc, checkpoint_at);
    let mut w = SnapshotWriter::new();
    w.str(workload.name());
    w.u64(checkpoint_at);
    w.bytes(&noc.checkpoint());
    let mut iw = SnapshotWriter::new();
    inj.save_state(&mut iw);
    w.bytes(&iw.finish());
    Ok(w.finish())
}

/// Restores a [`checkpoint_workload`] container and continues the run to
/// `cycles` total injection cycles plus drain. The work fingerprint
/// (`cycles`, `flits_routed`, `packets_delivered`) is byte-identical to
/// an uninterrupted [`run_workload`] of the same length; wall-clock
/// fields cover only the resumed portion.
///
/// # Errors
///
/// Propagates assembly failures and checkpoint-decode failures (damaged
/// file, wrong workload, or a checkpoint taken past `cycles`).
pub fn resume_workload(bytes: &[u8], cycles: u64) -> Result<WorkloadResult, XpipesError> {
    resume_workload_observed(bytes, cycles, None)
}

/// [`resume_workload`] with optional NDJSON progress heartbeats for the
/// resumed portion (same chunking contract as [`run_workload_observed`]).
///
/// # Errors
///
/// Propagates assembly failures and checkpoint-decode failures.
pub fn resume_workload_observed(
    bytes: &[u8],
    cycles: u64,
    mut progress: Option<&mut ProgressStream>,
) -> Result<WorkloadResult, XpipesError> {
    let mut r = SnapshotReader::open(bytes).map_err(XpipesError::from)?;
    let name = r.str().map_err(XpipesError::from)?;
    let checkpoint_at = r.u64().map_err(XpipesError::from)?;
    let noc_bytes = r.bytes().map_err(XpipesError::from)?;
    let inj_bytes = r.bytes().map_err(XpipesError::from)?;
    r.finish().map_err(XpipesError::from)?;
    let workload = Workload::from_name(&name).ok_or_else(|| {
        XpipesError::Snapshot(xpipes_sim::SnapshotError::Malformed(format!(
            "checkpoint is for unknown workload {name:?}"
        )))
    })?;
    if checkpoint_at > cycles {
        return Err(XpipesError::Snapshot(xpipes_sim::SnapshotError::Malformed(
            format!("checkpoint at cycle {checkpoint_at} is past the {cycles}-cycle run"),
        )));
    }
    let spec = workload.spec();
    let mut noc = Noc::with_seed(&spec, BENCH_SEED)?;
    noc.restore(&noc_bytes)?;
    let mut inj = Injector::new(
        &spec,
        InjectorConfig::new(workload.rate(), workload.pattern()),
        BENCH_SEED ^ 0x5EED,
    )?;
    let mut ir = SnapshotReader::open(&inj_bytes).map_err(XpipesError::from)?;
    inj.load_state(&mut ir).map_err(XpipesError::from)?;
    ir.finish().map_err(XpipesError::from)?;
    let start = Instant::now();
    let to_inject = cycles - checkpoint_at;
    match progress.as_deref_mut() {
        None => {
            inj.run(&mut noc, to_inject);
            noc.run_until_idle(cycles / 2);
        }
        Some(p) => {
            let chunk = p.interval;
            let mut done = 0u64;
            while done < to_inject {
                let n = chunk.min(to_inject - done);
                inj.run(&mut noc, n);
                done += n;
                emit_heartbeat(
                    p,
                    workload,
                    "inject",
                    &noc,
                    cycles,
                    Some(to_inject - done),
                    start,
                );
            }
            let budget = cycles / 2;
            let mut used = 0u64;
            while used < budget {
                let n = chunk.min(budget - used);
                let idle = noc.run_until_idle(n);
                used += n;
                emit_heartbeat(p, workload, "drain", &noc, cycles, None, start);
                if idle {
                    break;
                }
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    inj.drain_responses(&mut noc);
    let stats = noc.stats();
    if let Some(p) = progress {
        emit_heartbeat(p, workload, "done", &noc, cycles, Some(0), start);
    }
    Ok(WorkloadResult {
        name: workload.name(),
        cycles: stats.cycles,
        elapsed_s: elapsed,
        cycles_per_sec: stats.cycles as f64 / elapsed,
        flits_per_sec: stats.flits_routed as f64 / elapsed,
        flits_routed: stats.flits_routed,
        packets_delivered: stats.packets_delivered,
        retransmissions: stats.retransmissions,
        kernel_health: noc.kernel_health().clone(),
    })
}

/// Renders the deterministic work fingerprint of measured workloads:
/// cycles simulated, flits routed, and packets delivered — everything a
/// measurement carries except wall-clock. Two runs of the same seeded
/// work render byte-identically, which is what the checkpoint smoke
/// test diffs across a checkpoint/restore boundary.
pub fn fingerprint_json(results: &[WorkloadResult]) -> Json {
    let workloads = results
        .iter()
        .map(|r| {
            Json::object()
                .field("name", Json::str(r.name))
                .field("cycles", Json::UInt(r.cycles))
                .field("flits_routed", Json::UInt(r.flits_routed))
                .field("packets_delivered", Json::UInt(r.packets_delivered))
                .build()
        })
        .collect();
    Json::object()
        .field("bench", Json::str("cycle_engine_fingerprint"))
        .field("seed", Json::UInt(BENCH_SEED))
        .field("workloads", Json::Array(workloads))
        .build()
}

/// Renders the attribution benchmark document: both reference workloads'
/// attribution reports keyed by workload name, with the run parameters.
/// Everything inside is measured in cycles (no wall-clock), so the
/// document is byte-identical on any machine for the same `cycles`.
pub fn attribution_bench_json(cycles: u64, reports: Vec<(&'static str, Json)>) -> Json {
    let workloads = reports
        .into_iter()
        .map(|(name, report)| {
            Json::object()
                .field("name", Json::str(name))
                .field("report", report)
                .build()
        })
        .collect();
    Json::object()
        .field("bench", Json::str("cycle_engine_attribution"))
        .field("seed", Json::UInt(BENCH_SEED))
        .field("injection_rate", Json::Fixed(BENCH_RATE, 3))
        .field("cycles", Json::UInt(cycles))
        .field("workloads", Json::Array(workloads))
        .build()
}

/// Looks up a workload's attribution report inside an attribution
/// benchmark document.
fn bench_workload_report<'a>(doc: &'a Json, name: &str) -> Option<&'a Json> {
    doc.get("workloads")?
        .as_array()?
        .iter()
        .find(|w| w.get("name").and_then(Json::as_str) == Some(name))?
        .get("report")
}

/// Diffs a freshly measured attribution benchmark document against a
/// previously recorded baseline, workload by workload, and renders the
/// ranked movers. Byte-deterministic for deterministic inputs.
///
/// # Errors
///
/// A one-line message when the baseline text is not an attribution
/// benchmark document or misses a workload the current document has.
pub fn diff_attribution_bench(baseline_text: &str, current: &Json) -> Result<String, String> {
    let baseline =
        Json::parse(baseline_text).map_err(|e| format!("malformed attribution baseline: {e}"))?;
    let current_workloads = current
        .get("workloads")
        .and_then(Json::as_array)
        .ok_or("current attribution document has no workloads")?;
    let mut out = String::new();
    for w in current_workloads {
        let name = w
            .get("name")
            .and_then(Json::as_str)
            .ok_or("current attribution document has an unnamed workload")?;
        let cur_report = w.get("report").ok_or_else(|| {
            format!("current attribution document: workload {name} has no report")
        })?;
        let base_report = bench_workload_report(&baseline, name)
            .ok_or_else(|| format!("attribution baseline has no workload {name}"))?;
        let d = xpipes_sim::attribution::diff(base_report, cur_report)?;
        out.push_str(&format!("== {name} ==\n"));
        out.push_str(&d.render(10));
    }
    Ok(out)
}

/// Telemetry overhead on a reference workload: the fractional slowdown
/// of the metrics-registry epoch sampling relative to an uninstrumented
/// run, measured best-of-`trials` (minimum elapsed on each side, which
/// suppresses scheduler noise).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryOverhead {
    /// Best uninstrumented throughput (cycles/sec).
    pub baseline_cycles_per_sec: f64,
    /// Best telemetry-enabled throughput (cycles/sec).
    pub telemetry_cycles_per_sec: f64,
    /// Fractional slowdown: `1 - on/off`, clamped at 0.
    pub overhead: f64,
}

/// Measures telemetry overhead on `workload` by interleaving `trials`
/// uninstrumented and telemetry-enabled runs (registry sampling only —
/// the configuration the ≤5% budget is defined for) and comparing the
/// best of each.
///
/// # Errors
///
/// Propagates network-assembly failures.
pub fn measure_telemetry_overhead(
    workload: Workload,
    cycles: u64,
    trials: u32,
) -> Result<TelemetryOverhead, XpipesError> {
    let trials = trials.max(1);
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    let telemetry_opts = RunOptions {
        telemetry: Some(TelemetryConfig::default()),
        ..RunOptions::default()
    };
    for _ in 0..trials {
        let (_, off) = run_timed(workload, cycles, &RunOptions::default(), None)?;
        let (_, on) = run_timed(workload, cycles, &telemetry_opts, None)?;
        best_off = best_off.min(off.elapsed_s);
        best_on = best_on.min(on.elapsed_s);
    }
    let baseline = cycles as f64 / best_off;
    let with_telemetry = cycles as f64 / best_on;
    Ok(TelemetryOverhead {
        baseline_cycles_per_sec: baseline,
        telemetry_cycles_per_sec: with_telemetry,
        overhead: (1.0 - with_telemetry / baseline).max(0.0),
    })
}

/// Measures attribution overhead on `workload` by interleaving `trials`
/// bare and attribution-enabled runs and comparing the best of each —
/// the same best-of protocol (and the same budget) as
/// [`measure_telemetry_overhead`].
///
/// # Errors
///
/// Propagates network-assembly failures.
pub fn measure_attribution_overhead(
    workload: Workload,
    cycles: u64,
    trials: u32,
) -> Result<TelemetryOverhead, XpipesError> {
    let trials = trials.max(1);
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    let attribution_opts = RunOptions {
        attribution: true,
        ..RunOptions::default()
    };
    for _ in 0..trials {
        let (_, off) = run_timed(workload, cycles, &RunOptions::default(), None)?;
        let (_, on) = run_timed(workload, cycles, &attribution_opts, None)?;
        best_off = best_off.min(off.elapsed_s);
        best_on = best_on.min(on.elapsed_s);
    }
    let baseline = cycles as f64 / best_off;
    let with_attribution = cycles as f64 / best_on;
    Ok(TelemetryOverhead {
        baseline_cycles_per_sec: baseline,
        telemetry_cycles_per_sec: with_attribution,
        overhead: (1.0 - with_attribution / baseline).max(0.0),
    })
}

/// Renders the benchmark report: the current measurements next to the
/// checked-in pre-overhaul reference numbers.
pub fn report_json(results: &[WorkloadResult]) -> Json {
    let mut workloads = Vec::new();
    for r in results {
        let pre = match r.name {
            "uniform_random_4x4" => PRE_PR_UNIFORM_CYCLES_PER_SEC,
            "hotspot_4x4" => PRE_PR_HOTSPOT_CYCLES_PER_SEC,
            _ => 0.0,
        };
        let speedup = if pre > 0.0 {
            r.cycles_per_sec / pre
        } else {
            0.0
        };
        workloads.push(
            Json::object()
                .field("name", Json::str(r.name))
                .field("cycles", Json::UInt(r.cycles))
                .field("elapsed_s", Json::Fixed(r.elapsed_s, 4))
                .field("cycles_per_sec", Json::Fixed(r.cycles_per_sec, 0))
                .field("flits_per_sec", Json::Fixed(r.flits_per_sec, 0))
                .field("flits_routed", Json::UInt(r.flits_routed))
                .field("packets_delivered", Json::UInt(r.packets_delivered))
                .field("pre_pr_cycles_per_sec", Json::Fixed(pre, 0))
                .field("speedup_vs_pre_pr", Json::Fixed(speedup, 2))
                .field("kernel_health", r.kernel_health.to_json())
                .build(),
        );
    }
    Json::object()
        .field("bench", Json::str("cycle_engine"))
        .field("seed", Json::UInt(BENCH_SEED))
        .field("injection_rate", Json::Fixed(BENCH_RATE, 3))
        .field("workloads", Json::Array(workloads))
        .build()
}

/// Extracts `"cycles_per_sec"` for a named workload from a rendered
/// report (the minimal parsing the CI regression gate needs; the report
/// format is owned by [`report_json`], so positional scanning is safe).
pub fn parse_cycles_per_sec(report: &str, workload: &str) -> Option<f64> {
    let name_pos = report.find(&format!("\"name\": \"{workload}\""))?;
    let rest = &report[name_pos..];
    let key_pos = rest.find("\"cycles_per_sec\":")?;
    let after = rest[key_pos + "\"cycles_per_sec\":".len()..].trim_start();
    let end = after
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_runs_and_delivers() {
        let r = run_workload(Workload::UniformRandom, 3000).unwrap();
        assert!(r.packets_delivered > 0);
        assert!(r.flits_routed > 0);
        assert!(r.cycles >= 3000);
        assert!(r.cycles_per_sec > 0.0);
    }

    #[test]
    fn instrumented_run_preserves_work_fingerprint() {
        let plain = run_workload(Workload::UniformRandom, 2000).unwrap();
        let inst =
            run_workload_instrumented(Workload::UniformRandom, 2000, TelemetryConfig::full())
                .unwrap();
        assert_eq!(plain.flits_routed, inst.result.flits_routed);
        assert_eq!(plain.packets_delivered, inst.result.packets_delivered);
        assert_eq!(plain.cycles, inst.result.cycles);
        assert!(inst.timeline_json.is_some());
        assert!(inst.perfetto_json.is_some());
        assert!(inst.registry_json.contains("\"components\""));
    }

    #[test]
    fn overhead_measurement_is_sane() {
        let o = measure_telemetry_overhead(Workload::UniformRandom, 1000, 1).unwrap();
        assert!(o.baseline_cycles_per_sec > 0.0);
        assert!(o.telemetry_cycles_per_sec > 0.0);
        assert!((0.0..=1.0).contains(&o.overhead), "{o:?}");
    }

    #[test]
    fn large_fabric_workload_runs_and_delivers() {
        let r = run_workload(Workload::UniformRandom32, 3000).unwrap();
        assert_eq!(r.name, "uniform_random_32x32");
        assert!(r.packets_delivered > 0, "{r:?}");
        assert!(r.flits_routed > 0);
        assert!(r.cycles >= 3000);
    }

    #[test]
    fn large_fabric_names_round_trip() {
        for w in ALL_WORKLOADS {
            assert_eq!(Workload::from_name(w.name()), Some(w));
        }
        assert_eq!(Workload::from_name("bogus"), None);
    }

    #[test]
    fn tiled_specs_fit_the_hop_budget() {
        // Assembly + a submit through the longest tile route would fail
        // if the 7-hop source-route budget were exceeded; a short run
        // with deliveries proves the routes validate.
        let r = run_workload(Workload::Hotspot64, 1500).unwrap();
        assert!(r.packets_delivered > 0, "{r:?}");
    }

    #[test]
    fn workloads_are_deterministic_work() {
        let a = run_workload(Workload::Hotspot, 2000).unwrap();
        let b = run_workload(Workload::Hotspot, 2000).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.flits_routed, b.flits_routed);
        assert_eq!(a.packets_delivered, b.packets_delivered);
    }

    #[test]
    fn attributed_run_preserves_work_and_is_deterministic() {
        let plain = run_workload(Workload::UniformRandom, 2000).unwrap();
        let a = run_workload_attributed(Workload::UniformRandom, 2000).unwrap();
        assert_eq!(plain.flits_routed, a.result.flits_routed);
        assert_eq!(plain.packets_delivered, a.result.packets_delivered);
        assert_eq!(plain.cycles, a.result.cycles);
        let b = run_workload_attributed(Workload::UniformRandom, 2000).unwrap();
        assert_eq!(a.attribution.render(), b.attribution.render());
        let text = a.attribution.render();
        assert!(text.contains("\"phase_totals\""));
        assert!(text.contains("\"flows\""));
    }

    #[test]
    fn self_diff_of_attribution_bench_reports_no_movers() {
        let a = run_workload_attributed(Workload::UniformRandom, 1500).unwrap();
        let doc =
            attribution_bench_json(1500, vec![(Workload::UniformRandom.name(), a.attribution)]);
        let text = diff_attribution_bench(&doc.render(), &doc).unwrap();
        assert!(text.contains("== uniform_random_4x4 =="));
        assert!(text.contains("no component moved"), "{text}");
        assert!(
            diff_attribution_bench("not json", &doc).is_err(),
            "malformed baseline must be rejected"
        );
    }

    #[test]
    fn resumed_workload_matches_uninterrupted_fingerprint() {
        let whole = run_workload(Workload::UniformRandom, 4000).unwrap();
        let ckpt = checkpoint_workload(Workload::UniformRandom, 1500).unwrap();
        let resumed = resume_workload(&ckpt, 4000).unwrap();
        assert_eq!(resumed.cycles, whole.cycles);
        assert_eq!(resumed.flits_routed, whole.flits_routed);
        assert_eq!(resumed.packets_delivered, whole.packets_delivered);
        assert_eq!(
            fingerprint_json(&[resumed]).render(),
            fingerprint_json(&[whole]).render()
        );
    }

    #[test]
    fn resume_rejects_bad_checkpoints() {
        assert!(resume_workload(b"junk", 4000).is_err());
        let ckpt = checkpoint_workload(Workload::Hotspot, 2000).unwrap();
        assert!(
            resume_workload(&ckpt, 1000).is_err(),
            "checkpoint past the run length is rejected"
        );
    }

    #[test]
    fn kernel_health_is_deterministic_and_reported() {
        let a = run_workload(Workload::UniformRandom, 1500).unwrap();
        let b = run_workload(Workload::UniformRandom, 1500).unwrap();
        assert_eq!(a.kernel_health, b.kernel_health);
        assert_eq!(
            a.kernel_health.fallback_steps(),
            0,
            "bare run stays on the event kernel"
        );
        assert!(a.kernel_health.event_steps() > 0);
        let text = report_json(&[a]).render();
        assert!(text.contains("\"kernel_health\""));
        assert!(text.contains("\"fallback_reasons\""));
    }

    #[test]
    fn profile_and_progress_leave_the_fingerprint_unchanged() {
        let plain = run_workload(Workload::UniformRandom, 2000).unwrap();
        let dir = std::env::temp_dir().join("xpipes_engine_progress_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("progress.ndjson");
        let mut stream = ProgressStream::create(path.to_str().unwrap())
            .unwrap()
            .with_interval(500);
        let opts = RunOptions {
            profile: true,
            ..RunOptions::default()
        };
        let observed =
            run_workload_observed(Workload::UniformRandom, 2000, &opts, Some(&mut stream)).unwrap();
        drop(stream);
        // Observers are quarantined: the byte-compared work fingerprint
        // is identical with profiling and progress streaming armed, and
        // carries no wall-clock profile data.
        let fp = fingerprint_json(std::slice::from_ref(&observed.result)).render();
        assert_eq!(fingerprint_json(&[plain]).render(), fp);
        assert!(!fp.contains("kernel_profile"));
        assert!(observed.kernel_profile.is_some());
        // The heartbeat file is well-formed NDJSON whose final line
        // totals match the measurement.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().count() >= 2);
        for line in text.lines() {
            Json::parse(line).expect("well-formed NDJSON");
        }
        let last = Json::parse(text.lines().last().unwrap()).unwrap();
        assert_eq!(last.get("final"), Some(&Json::Bool(true)));
        assert_eq!(
            last.get("cycle").and_then(Json::as_u64),
            Some(observed.result.cycles)
        );
        assert_eq!(
            last.get("packets_delivered").and_then(Json::as_u64),
            Some(observed.result.packets_delivered)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn report_round_trips_through_parser() {
        let r = WorkloadResult {
            name: "uniform_random_4x4",
            cycles: 1000,
            elapsed_s: 0.5,
            cycles_per_sec: 123456.0,
            flits_per_sec: 789.0,
            flits_routed: 400,
            packets_delivered: 20,
            retransmissions: 0,
            kernel_health: KernelHealth::new(),
        };
        let text = report_json(&[r]).render();
        assert_eq!(
            parse_cycles_per_sec(&text, "uniform_random_4x4"),
            Some(123456.0)
        );
        assert_eq!(parse_cycles_per_sec(&text, "missing"), None);
    }
}
