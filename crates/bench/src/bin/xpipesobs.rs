//! Run-ledger query and regression-sentinel entry point.
//!
//! Reads the append-only NDJSON run ledger that the bench binaries
//! write with `--ledger PATH` (see `xpipes_bench::ledger`) and turns
//! the accumulated history into answers:
//!
//! * `list` — one row per recorded run (source, workload, seed, config
//!   digest, headline counters, verdict);
//! * `show LINE` — the full record at that ledger line, pretty-printed;
//! * `trend METRIC` — per-group trajectory of one metric (e.g.
//!   `cycles_per_sec`, `avg_latency`, `speedup`) with the
//!   first-to-latest delta;
//! * `compare A B` — headline metric deltas between two ledger lines,
//!   plus the ranked attribution movers when both runs recorded the
//!   per-channel latency attribution;
//! * `check` — the regression sentinel: the latest run of every
//!   comparison group against a rolling window of its predecessors
//!   (median ± MAD tolerance, direction-aware). Exits 2 when any
//!   watched metric left the tolerated band on the regression side.
//!
//! Every error follows the bench binaries' one-line `error: ...` +
//! exit-2 contract, so CI output stays greppable. A missing or empty
//! ledger is an ordinary state for `list` (one stdout line, exit 0) and
//! an error everywhere else (one-line error, exit 2).
//!
//! ```text
//! xpipesobs --ledger ledger.ndjson list
//! xpipesobs --ledger ledger.ndjson trend cycles_per_sec
//! xpipesobs --ledger ledger.ndjson compare 3 12
//! xpipesobs --ledger ledger.ndjson check --window 8 --min-rel 0.10
//! ```

use std::process::ExitCode;

use xpipes_bench::ledger::{
    check, compare, deterministic_view, read_ledger_if_exists, render_checks, render_list,
    render_trend, trend, CheckConfig, LedgerEntry,
};

enum Command {
    List,
    Show(usize),
    Trend(String),
    Compare(usize, usize),
    Check,
}

struct Args {
    ledger: String,
    command: Command,
    check_cfg: CheckConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut ledger = "ledger.ndjson".to_string();
    let mut check_cfg = CheckConfig::default();
    let mut command: Option<Command> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--ledger" => ledger = value("--ledger")?,
            "--window" => {
                check_cfg.window = value("--window")?
                    .parse()
                    .map_err(|e| format!("bad --window: {e}"))?;
                if check_cfg.window == 0 {
                    return Err("--window must be at least 1".into());
                }
            }
            "--mad-k" => {
                check_cfg.mad_k = value("--mad-k")?
                    .parse()
                    .map_err(|e| format!("bad --mad-k: {e}"))?;
            }
            "--min-rel" => {
                check_cfg.min_rel = value("--min-rel")?
                    .parse()
                    .map_err(|e| format!("bad --min-rel: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: xpipesobs [--ledger PATH] COMMAND\n\
                     commands:\n  \
                     list                 one row per recorded run\n  \
                     show LINE            full record at a ledger line\n  \
                     trend METRIC         per-group metric trajectory\n  \
                     compare A B          metric deltas + attribution movers\n  \
                     check                regression sentinel (exit 2 on anomaly)\n\
                     check tuning: [--window N] [--mad-k F] [--min-rel F]"
                );
                std::process::exit(0);
            }
            "list" if command.is_none() => command = Some(Command::List),
            "show" if command.is_none() => {
                let line = value("show")?
                    .parse()
                    .map_err(|e| format!("bad show LINE: {e}"))?;
                command = Some(Command::Show(line));
            }
            "trend" if command.is_none() => command = Some(Command::Trend(value("trend")?)),
            "compare" if command.is_none() => {
                let a = value("compare")?
                    .parse()
                    .map_err(|e| format!("bad compare line A: {e}"))?;
                let b = value("compare")?
                    .parse()
                    .map_err(|e| format!("bad compare line B: {e}"))?;
                command = Some(Command::Compare(a, b));
            }
            "check" if command.is_none() => command = Some(Command::Check),
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    let command = command.ok_or("no command given (try --help)")?;
    Ok(Args {
        ledger,
        command,
        check_cfg,
    })
}

fn entry_at<'a>(
    entries: &'a [LedgerEntry],
    line: usize,
    path: &str,
) -> Result<&'a LedgerEntry, String> {
    entries
        .iter()
        .find(|e| e.line == line)
        .ok_or_else(|| format!("ledger {path} has no record on line {line}"))
}

fn run(args: &Args) -> Result<ExitCode, String> {
    // A ledger nobody has appended to yet is an ordinary state, not a
    // failure: `list` reports it on stdout and exits 0 so fresh CI
    // environments can probe the ledger without special-casing; every
    // other command genuinely has nothing to answer with, so it keeps
    // the one-line error + exit-2 contract.
    let entries = read_ledger_if_exists(&args.ledger)?.unwrap_or_default();
    if entries.is_empty() {
        if matches!(args.command, Command::List) {
            println!("ledger {} holds no records", args.ledger);
            return Ok(ExitCode::SUCCESS);
        }
        return Err(format!("ledger {} holds no records", args.ledger));
    }
    match &args.command {
        Command::List => {
            print!("{}", render_list(&entries));
        }
        Command::Show(line) => {
            let entry = entry_at(&entries, *line, &args.ledger)?;
            println!("{}", entry.json.render());
            println!(
                "deterministic view:\n{}",
                deterministic_view(&entry.json).render()
            );
        }
        Command::Trend(metric) => {
            let rows = trend(&entries, metric);
            if rows.is_empty() {
                return Err(format!(
                    "no run in ledger {} records metric {metric:?}",
                    args.ledger
                ));
            }
            print!("{}", render_trend(&rows, metric));
        }
        Command::Compare(a, b) => {
            let ea = entry_at(&entries, *a, &args.ledger)?;
            let eb = entry_at(&entries, *b, &args.ledger)?;
            print!("{}", compare(ea, eb)?);
        }
        Command::Check => {
            let checks = check(&entries, &args.check_cfg);
            if checks.is_empty() {
                println!(
                    "check: no group in ledger {} has prior history yet; nothing to compare",
                    args.ledger
                );
                return Ok(ExitCode::SUCCESS);
            }
            print!("{}", render_checks(&checks));
            let anomalies = checks.iter().filter(|c| c.anomalous).count();
            if anomalies > 0 {
                eprintln!(
                    "error: {anomalies} metric(s) regressed beyond the tolerated band \
                     (window {}, mad-k {}, min-rel {})",
                    args.check_cfg.window, args.check_cfg.mad_k, args.check_cfg.min_rel
                );
                return Ok(ExitCode::from(2));
            }
            println!(
                "check: all {} watched metrics within tolerance",
                checks.len()
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
