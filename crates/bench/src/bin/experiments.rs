//! `experiments` — regenerate every paper table/figure in one run,
//! without criterion timing (the fast path for refreshing EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p xpipes-bench --bin experiments
//! ```

use xpipes_bench::experiments::{
    ablation_acknack, ablation_arbitration, ablation_buffers, ablation_flit_width,
    ablation_link_pipeline, e7_eval_config, freq_area_tradeoff, load_latency, mesh_case_study,
    ni_synthesis, pipeline_latency, switch_synthesis, topology_comparison, FLIT_WIDTHS,
};
use xpipes_bench::Table;
use xpipes_traffic::pattern::Pattern;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // E1/E2.
    let rows = ni_synthesis(&FLIT_WIDTHS)?;
    println!("== E1/E2: NI synthesis (area mm² / power mW @ 1 GHz) ==");
    let mut t = Table::new(&["flit", "ini mm²", "tgt mm²", "ini mW", "tgt mW"]);
    for r in &rows {
        t.row_owned(vec![
            r.flit_width.to_string(),
            format!("{:.4}", r.initiator.area_mm2),
            format!("{:.4}", r.target.area_mm2),
            format!("{:.2}", r.initiator.power_mw),
            format!("{:.2}", r.target.power_mw),
        ]);
    }
    print!("{t}");

    // E3/E4/E9.
    let configs = [(4usize, 4usize), (6, 4), (5, 5)];
    let rows = switch_synthesis(&configs, &FLIT_WIDTHS)?;
    println!("\n== E3/E4/E9: switch synthesis ==");
    let mut t = Table::new(&["switch", "flit", "area mm²", "power mW", "fmax MHz"]);
    for r in &rows {
        t.row_owned(vec![
            format!("{}x{}", r.inputs, r.outputs),
            r.flit_width.to_string(),
            format!("{:.4}", r.report.area_mm2),
            format!("{:.1}", r.report.power_mw),
            format!("{:.0}", r.fmax_mhz),
        ]);
    }
    print!("{t}");

    // E5.
    let study = mesh_case_study()?;
    println!("\n== E5: mesh case study ==");
    let mut t = Table::new(&["flit", "ini NI", "tgt NI", "4x4", "6x4"]);
    for (w, a, b, c, d) in &study.component_rows {
        t.row_owned(vec![
            w.to_string(),
            format!("{a:.4}"),
            format!("{b:.4}"),
            format!("{c:.4}"),
            format!("{d:.4}"),
        ]);
    }
    print!("{t}");
    for (w, total) in &study.mesh_totals_mm2 {
        println!("D26 3x4 mesh @ {w}-bit: {total:.2} mm² (paper ~2.6)");
    }
    println!(
        "fmax: NI {:.0}, 4x4 {:.0}, 6x4 {:.0} MHz (ratio {:.2})",
        study.fmax_ni_mhz,
        study.fmax_4x4_mhz,
        study.fmax_6x4_mhz,
        study.fmax_6x4_mhz / study.fmax_4x4_mhz
    );

    // E6.
    println!("\n== E6: 5x5 32-bit area vs frequency ==");
    let mut t = Table::new(&["target MHz", "area mm²"]);
    for (mhz, area, _) in freq_area_tradeoff(&[200.0, 600.0, 1000.0, 1200.0, 1400.0])? {
        t.row_owned(vec![format!("{mhz:.0}"), format!("{area:.4}")]);
    }
    print!("{t}");

    // E7.
    println!("\n== E7: topology comparison (VOPD) ==");
    let mut t = Table::new(&["candidate", "fabric mm²", "total mm²", "MHz", "cyc", "ns"]);
    for r in topology_comparison(&e7_eval_config())? {
        t.row_owned(vec![
            r.name,
            format!("{:.3}", r.fabric_area_mm2),
            format!("{:.3}", r.total_area_mm2),
            format!("{:.0}", r.fmax_mhz),
            format!("{:.1}", r.latency_cycles),
            format!("{:.1}", r.latency_ns),
        ]);
    }
    print!("{t}");

    // E8.
    let p = pipeline_latency()?;
    println!(
        "\n== E8: pipeline depth == lite {:.1} cyc vs legacy {:.1} cyc ({:.1}/traversal)",
        p.lite_cycles,
        p.legacy_cycles,
        (p.legacy_cycles - p.lite_cycles) / 4.0
    );

    // P1.
    println!("\n== P1: load-latency (uniform, 4x4) ==");
    let mut t = Table::new(&["offered", "accepted", "avg cyc", "p95 cyc"]);
    for p in load_latency(Pattern::Uniform, &[0.01, 0.04, 0.08, 0.15])? {
        t.row_owned(vec![
            format!("{:.3}", p.offered),
            format!("{:.3}", p.accepted_packets_per_cycle),
            format!("{:.1}", p.avg_latency_cycles),
            format!("{:.0}", p.p95_latency_cycles),
        ]);
    }
    print!("{t}");

    // Ablations.
    println!("\n== A1: arbitration ==");
    for r in ablation_arbitration(0.05)? {
        println!(
            "  {}: mean {:.1} cyc (best {:.1}, worst {:.1})",
            r.policy, r.mean_latency, r.best_initiator_latency, r.worst_initiator_latency
        );
    }
    println!("== A2: ACK/nACK ==");
    for r in ablation_acknack(&[0.0, 0.01, 0.05])? {
        println!(
            "  er={:.3}: delivered {}, retransmitted {}, mean {:.1} cyc",
            r.error_rate, r.delivered, r.retransmissions, r.mean_latency
        );
    }
    println!("== A3: buffers ==");
    for r in ablation_buffers(&[2, 6, 10])? {
        println!(
            "  depth {}: {:.3} pkt/cyc, {:.1} cyc, {:.4} mm²",
            r.depth, r.accepted, r.mean_latency, r.switch_area_mm2
        );
    }
    println!("== A4: link pipeline ==");
    for r in ablation_link_pipeline(&[1, 2, 4])? {
        println!(
            "  stages {}: {:.1} cyc, reach {:.1} mm, retransmit {} flits",
            r.stages, r.mean_latency, r.reach_mm_at_1ghz, r.retransmit_depth
        );
    }
    println!("== A5: flit width ==");
    for r in ablation_flit_width(&[16, 32, 64, 128])? {
        println!(
            "  w={}: {:.1} cyc, {} flits/write, {:.4} mm²",
            r.width, r.mean_latency, r.flits_per_packet, r.switch_area_mm2
        );
    }
    Ok(())
}
