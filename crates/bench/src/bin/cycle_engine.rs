//! Cycle-engine throughput benchmark entry point.
//!
//! Measures simulation-engine speed (cycles/sec, flits/sec) on the
//! reference 4x4-mesh uniform-random and hotspot workloads and writes
//! the machine-readable report (default `BENCH_cycle_engine.json`, i.e.
//! the repo root when run from there). With `--check PATH` it compares
//! the fresh measurement against a previously recorded report and exits
//! nonzero on a throughput regression beyond the tolerance, so CI can
//! gate on it.
//!
//! Telemetry flags: `--telemetry` attaches the metric registry to every
//! workload (the timed run then exercises the instrumented engine, which
//! is how CI measures the real-world cost), `--timeline PATH` also
//! collects and writes the congestion timeline of the uniform-random
//! workload, `--flight-recorder` keeps a flight-recorder ring whose
//! Perfetto view `--perfetto PATH` exports, and
//! `--max-telemetry-overhead F` runs an off/on comparison and exits
//! nonzero when the fractional slowdown exceeds `F`.
//!
//! Attribution flags: `--attribution` attaches the per-packet latency
//! attribution ledger to every workload and writes the attribution
//! benchmark document (default `BENCH_attribution.json`, override with
//! `--attribution-out PATH`); `--diff BASELINE.json` compares the fresh
//! attribution document against a recorded one and prints the ranked
//! `(channel, phase)` movers — the run-diff regression explainer.
//!
//! Checkpoint flags: `--checkpoint PATH --checkpoint-at C` runs the
//! selected `--workload` to cycle C and writes the simulation state to
//! PATH instead of benchmarking; `--restore PATH` resumes a saved
//! checkpoint and continues to `--cycles` total; `--fingerprint-out
//! PATH` writes the deterministic work fingerprint (cycles, flits
//! routed, packets delivered — no wall-clock) so a resumed run can be
//! byte-diffed against an uninterrupted one.
//!
//! Observability flags: `--progress PATH` streams an NDJSON heartbeat
//! (cycle position, cycles/s, delivered packets, kernel-mode mix, ETA)
//! to PATH — or stderr for `-` — every `--progress-every N` cycles
//! (default 5000); `--explain-kernel` prints each workload's
//! kernel-health table (dispatch mix, fallback-reason histogram, wheel
//! depth, time jumps); `--profile` arms the wall-clock kernel phase
//! profiler and prints the per-phase breakdown; `--ledger PATH` appends
//! one schema-versioned record per timed workload (work counters,
//! kernel dispatch mix, telemetry/attribution digests, wall-clock
//! rates) to the shared run ledger read back by `xpipesobs`. None of
//! these change any byte-compared artifact.
//!
//! ```text
//! cycle_engine --cycles 200000
//! cycle_engine --cycles 50000 --check BENCH_cycle_engine.json --tolerance 0.2
//! cycle_engine --cycles 50000 --telemetry --timeline timeline.json \
//!              --flight-recorder --perfetto trace.json
//! cycle_engine --cycles 50000 --max-telemetry-overhead 0.05
//! cycle_engine --cycles 50000 --attribution --diff BENCH_attribution.json
//! cycle_engine --workload uniform_random_4x4 --checkpoint ck.bin --checkpoint-at 20000
//! cycle_engine --cycles 50000 --restore ck.bin --fingerprint-out fp.json
//! cycle_engine --cycles 50000 --telemetry --progress progress.ndjson --explain-kernel
//! cycle_engine --cycles 50000 --profile
//! cycle_engine --cycles 50000 --ledger ledger.ndjson
//! ```

use std::process::ExitCode;

use xpipes::noc::TelemetryConfig;
use xpipes_bench::baseline::load_baseline;
use xpipes_bench::cycle_engine::{
    attribution_bench_json, checkpoint_workload, diff_attribution_bench, fingerprint_json,
    measure_attribution_overhead, measure_telemetry_overhead, parse_cycles_per_sec, report_json,
    resume_workload_observed, run_workload_observed, RunOptions, Workload, WorkloadResult,
    DEFAULT_CYCLES,
};
use xpipes_bench::ledger;
use xpipes_bench::progress::{open_sink, SinkMode};
use xpipes_sim::Json;

struct Args {
    cycles: u64,
    out: String,
    check: Option<String>,
    tolerance: f64,
    telemetry: bool,
    timeline: Option<String>,
    flight_recorder: bool,
    perfetto: Option<String>,
    max_telemetry_overhead: Option<f64>,
    attribution: bool,
    attribution_out: String,
    diff: Option<String>,
    /// `--workload` is repeatable; empty means the default 4x4 pair.
    workload: Vec<Workload>,
    checkpoint: Option<String>,
    checkpoint_at: Option<u64>,
    restore: Option<String>,
    fingerprint_out: Option<String>,
    progress: Option<String>,
    progress_every: Option<u64>,
    explain_kernel: bool,
    profile: bool,
    ledger: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cycles: DEFAULT_CYCLES,
        out: "BENCH_cycle_engine.json".to_string(),
        check: None,
        tolerance: 0.2,
        telemetry: false,
        timeline: None,
        flight_recorder: false,
        perfetto: None,
        max_telemetry_overhead: None,
        attribution: false,
        attribution_out: "BENCH_attribution.json".to_string(),
        diff: None,
        workload: Vec::new(),
        checkpoint: None,
        checkpoint_at: None,
        restore: None,
        fingerprint_out: None,
        progress: None,
        progress_every: None,
        explain_kernel: false,
        profile: false,
        ledger: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--cycles" => {
                args.cycles = value("--cycles")?
                    .parse()
                    .map_err(|e| format!("bad --cycles: {e}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--check" => args.check = Some(value("--check")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
            }
            "--telemetry" => args.telemetry = true,
            "--timeline" => args.timeline = Some(value("--timeline")?),
            "--flight-recorder" => args.flight_recorder = true,
            "--perfetto" => args.perfetto = Some(value("--perfetto")?),
            "--max-telemetry-overhead" => {
                args.max_telemetry_overhead = Some(
                    value("--max-telemetry-overhead")?
                        .parse()
                        .map_err(|e| format!("bad --max-telemetry-overhead: {e}"))?,
                );
            }
            "--attribution" => args.attribution = true,
            "--attribution-out" => args.attribution_out = value("--attribution-out")?,
            "--diff" => args.diff = Some(value("--diff")?),
            "--workload" => {
                let name = value("--workload")?;
                args.workload.push(
                    Workload::from_name(&name)
                        .ok_or_else(|| format!("unknown workload '{name}'"))?,
                );
            }
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint")?),
            "--checkpoint-at" => {
                args.checkpoint_at = Some(
                    value("--checkpoint-at")?
                        .parse()
                        .map_err(|e| format!("bad --checkpoint-at: {e}"))?,
                );
            }
            "--restore" => args.restore = Some(value("--restore")?),
            "--fingerprint-out" => args.fingerprint_out = Some(value("--fingerprint-out")?),
            "--progress" => args.progress = Some(value("--progress")?),
            "--progress-every" => {
                args.progress_every = Some(
                    value("--progress-every")?
                        .parse()
                        .map_err(|e| format!("bad --progress-every: {e}"))?,
                );
            }
            "--explain-kernel" => args.explain_kernel = true,
            "--profile" => args.profile = true,
            "--ledger" => args.ledger = Some(value("--ledger")?),
            "--help" | "-h" => {
                println!(
                    "usage: cycle_engine [--cycles N] [--out PATH] \
                     [--check BASELINE.json] [--tolerance F] [--telemetry] \
                     [--timeline PATH] [--flight-recorder] [--perfetto PATH] \
                     [--max-telemetry-overhead F] [--attribution] \
                     [--attribution-out PATH] [--diff BASELINE.json] \
                     [--workload NAME] [--checkpoint PATH --checkpoint-at N] \
                     [--restore PATH] [--fingerprint-out PATH] \
                     [--progress PATH] [--progress-every N] \
                     [--explain-kernel] [--profile] [--ledger PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn telemetry_config(args: &Args) -> TelemetryConfig {
    TelemetryConfig {
        timeline: args.timeline.is_some(),
        flight_recorder_depth: if args.flight_recorder || args.perfetto.is_some() {
            4096
        } else {
            0
        },
        ..TelemetryConfig::default()
    }
}

fn write_artifact(path: &str, what: &str, body: &str) -> Result<(), ExitCode> {
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("error: cannot write {what} {path}: {e}");
        return Err(ExitCode::from(2));
    }
    println!("{what} written to {path}");
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if args.diff.is_some() && !args.attribution {
        eprintln!("error: --diff requires --attribution");
        return ExitCode::from(2);
    }
    if args.checkpoint.is_some() != args.checkpoint_at.is_some() {
        eprintln!("error: --checkpoint and --checkpoint-at go together");
        return ExitCode::from(2);
    }
    if args.checkpoint.is_some() && args.restore.is_some() {
        eprintln!("error: --checkpoint and --restore are mutually exclusive");
        return ExitCode::from(2);
    }

    // Checkpoint mode: save the simulation state and exit; no timing.
    if let (Some(path), Some(at)) = (&args.checkpoint, args.checkpoint_at) {
        let workload = args
            .workload
            .first()
            .copied()
            .unwrap_or(Workload::UniformRandom);
        let bytes = match checkpoint_workload(workload, at) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: checkpoint failed: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(path, &bytes) {
            eprintln!("error: cannot write checkpoint {path}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "checkpoint of {} at cycle {at} written to {path} ({} bytes)",
            workload.name(),
            bytes.len()
        );
        return ExitCode::SUCCESS;
    }

    // The NDJSON heartbeat sink is shared by every timed run in this
    // invocation (restore or workload loop alike).
    let mut progress = match open_sink(args.progress.as_deref(), "progress", SinkMode::Truncate) {
        Ok(p) => p.map(|p| match args.progress_every {
            Some(n) => p.with_interval(n),
            None => p,
        }),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    // The run ledger accumulates history across invocations, so it is
    // always opened in append mode. Opened before any timed run so a
    // bad path fails fast instead of discarding a finished measurement.
    let mut ledger_sink = match open_sink(args.ledger.as_deref(), "ledger", SinkMode::Append) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    // Restore mode: resume the saved state to --cycles, then fall
    // through to the normal report/fingerprint/check plumbing with the
    // single resumed result.
    let restored: Option<WorkloadResult> = if let Some(path) = &args.restore {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: cannot read checkpoint {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match resume_workload_observed(&bytes, args.cycles, progress.as_mut()) {
            Ok(r) => {
                println!(
                    "{:<20} {:>12.0} cycles/s  {:>12.0} flits/s  ({} cycles in {:.3}s, resumed)",
                    r.name, r.cycles_per_sec, r.flits_per_sec, r.cycles, r.elapsed_s
                );
                // Resumed runs record work, kernel mix, and wall rates;
                // the telemetry/attribution sections need the live
                // network, which a restore does not keep around.
                if let Some(sink) = ledger_sink.as_mut() {
                    sink.emit(&ledger::engine_record(&r, args.cycles, None, None));
                }
                Some(r)
            }
            Err(e) => {
                eprintln!("error: restore failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };

    let instrument = args.telemetry
        || args.timeline.is_some()
        || args.flight_recorder
        || args.perfetto.is_some();
    let workloads: Vec<Workload> = if restored.is_some() {
        Vec::new()
    } else if !args.workload.is_empty() {
        args.workload.clone()
    } else {
        // The default pair stays the 4x4 meshes: the overhead gates and
        // the long-standing baseline are defined on them. The
        // large-fabric workloads run via explicit `--workload` flags.
        vec![Workload::UniformRandom, Workload::Hotspot]
    };
    let opts = RunOptions {
        telemetry: instrument.then(|| telemetry_config(&args)),
        attribution: args.attribution,
        profile: args.profile,
    };
    let mut results: Vec<WorkloadResult> = restored.into_iter().collect();
    let mut attribution_reports: Vec<(&'static str, Json)> = Vec::new();
    for w in workloads {
        let obs = match run_workload_observed(w, args.cycles, &opts, progress.as_mut()) {
            Ok(obs) => obs,
            Err(e) => {
                eprintln!("error: workload {} failed: {e}", w.name());
                return ExitCode::from(2);
            }
        };
        // Artifacts come from the uniform-random workload (the
        // canonical reference); the hotspot run just exercises the
        // instrumented engine.
        if w == Workload::UniformRandom {
            if let (Some(path), Some(body)) = (&args.timeline, &obs.timeline_json) {
                if let Err(code) = write_artifact(path, "timeline", body) {
                    return code;
                }
            }
            if let (Some(path), Some(body)) = (&args.perfetto, &obs.perfetto_json) {
                if let Err(code) = write_artifact(path, "perfetto trace", body) {
                    return code;
                }
            }
        }
        if let Some(sink) = ledger_sink.as_mut() {
            sink.emit(&ledger::engine_record(
                &obs.result,
                args.cycles,
                Some(obs.telemetry_summary.clone()),
                obs.attribution.as_ref(),
            ));
        }
        if let Some(a) = obs.attribution {
            attribution_reports.push((w.name(), a));
        }
        if let Some(profile) = &obs.kernel_profile {
            println!("kernel profile — {}:\n{}", w.name(), profile.render());
        }
        let r = obs.result;
        println!(
            "{:<20} {:>12.0} cycles/s  {:>12.0} flits/s  ({} cycles in {:.3}s)",
            r.name, r.cycles_per_sec, r.flits_per_sec, r.cycles, r.elapsed_s
        );
        results.push(r);
    }
    if args.explain_kernel {
        for r in &results {
            println!("kernel health — {}:\n{}", r.name, r.kernel_health.render());
        }
    }
    let report = report_json(&results).render();
    if let Err(e) = std::fs::write(&args.out, &report) {
        eprintln!("error: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    println!("report written to {}", args.out);
    if let Some(path) = &args.fingerprint_out {
        let fp = fingerprint_json(&results).render();
        if let Err(e) = std::fs::write(path, &fp) {
            eprintln!("error: cannot write fingerprint {path}: {e}");
            return ExitCode::from(2);
        }
        println!("work fingerprint written to {path}");
    }
    if args.attribution {
        let doc = attribution_bench_json(args.cycles, std::mem::take(&mut attribution_reports));
        if let Err(code) =
            write_artifact(&args.attribution_out, "attribution report", &doc.render())
        {
            return code;
        }
        if let Some(path) = &args.diff {
            let baseline = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read attribution baseline {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match diff_attribution_bench(&baseline, &doc) {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }
    if let Some(path) = args.check {
        let baseline = match load_baseline(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        let mut regressed = false;
        for r in &results {
            let Some(base) = parse_cycles_per_sec(&baseline, r.name) else {
                eprintln!(
                    "error: baseline {path} has no entry for workload {}",
                    r.name
                );
                return ExitCode::from(2);
            };
            let floor = base * (1.0 - args.tolerance);
            let status = if r.cycles_per_sec < floor {
                regressed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "check {:<20} baseline {:>12.0}  current {:>12.0}  floor {:>12.0}  {status}",
                r.name, base, r.cycles_per_sec, floor
            );
        }
        if regressed {
            eprintln!(
                "error: throughput regressed more than {:.0}%",
                args.tolerance * 100.0
            );
            return ExitCode::FAILURE;
        }
    }
    if let Some(budget) = args.max_telemetry_overhead {
        let o = match measure_telemetry_overhead(Workload::UniformRandom, args.cycles, 3) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: overhead measurement failed: {e}");
                return ExitCode::from(2);
            }
        };
        println!(
            "telemetry overhead: baseline {:>12.0} cycles/s  telemetry {:>12.0} cycles/s  \
             overhead {:.1}% (budget {:.1}%)",
            o.baseline_cycles_per_sec,
            o.telemetry_cycles_per_sec,
            o.overhead * 100.0,
            budget * 100.0
        );
        if o.overhead > budget {
            eprintln!(
                "error: telemetry overhead {:.1}% exceeds budget {:.1}%",
                o.overhead * 100.0,
                budget * 100.0
            );
            return ExitCode::FAILURE;
        }
        if args.attribution {
            let a = match measure_attribution_overhead(Workload::UniformRandom, args.cycles, 3) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("error: attribution overhead measurement failed: {e}");
                    return ExitCode::from(2);
                }
            };
            println!(
                "attribution overhead: baseline {:>12.0} cycles/s  attributed {:>12.0} cycles/s  \
                 overhead {:.1}% (budget {:.1}%)",
                a.baseline_cycles_per_sec,
                a.telemetry_cycles_per_sec,
                a.overhead * 100.0,
                budget * 100.0
            );
            if a.overhead > budget {
                eprintln!(
                    "error: attribution overhead {:.1}% exceeds budget {:.1}%",
                    a.overhead * 100.0,
                    budget * 100.0
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
