//! Cycle-engine throughput benchmark entry point.
//!
//! Measures simulation-engine speed (cycles/sec, flits/sec) on the
//! reference 4x4-mesh uniform-random and hotspot workloads and writes
//! the machine-readable report (default `BENCH_cycle_engine.json`, i.e.
//! the repo root when run from there). With `--check PATH` it compares
//! the fresh measurement against a previously recorded report and exits
//! nonzero on a throughput regression beyond the tolerance, so CI can
//! gate on it.
//!
//! ```text
//! cycle_engine --cycles 200000
//! cycle_engine --cycles 50000 --check BENCH_cycle_engine.json --tolerance 0.2
//! ```

use std::process::ExitCode;

use xpipes_bench::cycle_engine::{
    parse_cycles_per_sec, report_json, run_workload, Workload, DEFAULT_CYCLES,
};

struct Args {
    cycles: u64,
    out: String,
    check: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cycles: DEFAULT_CYCLES,
        out: "BENCH_cycle_engine.json".to_string(),
        check: None,
        tolerance: 0.2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--cycles" => {
                args.cycles = value("--cycles")?
                    .parse()
                    .map_err(|e| format!("bad --cycles: {e}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--check" => args.check = Some(value("--check")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: cycle_engine [--cycles N] [--out PATH] \
                     [--check BASELINE.json] [--tolerance F]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let workloads = [Workload::UniformRandom, Workload::Hotspot];
    let mut results = Vec::new();
    for w in workloads {
        match run_workload(w, args.cycles) {
            Ok(r) => {
                println!(
                    "{:<20} {:>12.0} cycles/s  {:>12.0} flits/s  ({} cycles in {:.3}s)",
                    r.name, r.cycles_per_sec, r.flits_per_sec, r.cycles, r.elapsed_s
                );
                results.push(r);
            }
            Err(e) => {
                eprintln!("error: workload {} failed: {e}", w.name());
                return ExitCode::from(2);
            }
        }
    }
    let report = report_json(&results).render();
    if let Err(e) = std::fs::write(&args.out, &report) {
        eprintln!("error: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    println!("report written to {}", args.out);
    if let Some(path) = args.check {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read baseline {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let mut regressed = false;
        for r in &results {
            let Some(base) = parse_cycles_per_sec(&baseline, r.name) else {
                eprintln!("warning: baseline has no entry for {}", r.name);
                continue;
            };
            let floor = base * (1.0 - args.tolerance);
            let status = if r.cycles_per_sec < floor {
                regressed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "check {:<20} baseline {:>12.0}  current {:>12.0}  floor {:>12.0}  {status}",
                r.name, base, r.cycles_per_sec, floor
            );
        }
        if regressed {
            eprintln!(
                "error: throughput regressed more than {:.0}%",
                args.tolerance * 100.0
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
