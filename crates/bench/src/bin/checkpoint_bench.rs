//! Warm-start sweep benchmark entry point.
//!
//! Times a load–latency sweep run cold (warm-up at every operating
//! point) against the same sweep branched off one shared warm
//! checkpoint, and writes the machine-readable report (default
//! `BENCH_checkpoint.json`). With `--check PATH` it compares the fresh
//! speedup against a previously recorded report and exits nonzero when
//! the warm-start advantage shrank beyond the tolerance — the CI gate
//! that keeps checkpoint restore cheap.
//!
//! `--progress PATH` streams stage-level NDJSON heartbeats (cold sweep,
//! warm-up, warm sweep, final speedup) to PATH, or stderr for `-`.
//! `--ledger PATH` appends one schema-versioned run record (planned
//! warm-path work, warm-curve mean latency, and the cold/warm speedup
//! the `xpipesobs check` sentinel watches) to the shared run ledger.
//!
//! ```text
//! checkpoint_bench
//! checkpoint_bench --warmup 8000 --window 4000 --rates 0.01,0.03,0.05
//! checkpoint_bench --check BENCH_checkpoint.json --tolerance 0.25
//! checkpoint_bench --progress progress.ndjson --ledger ledger.ndjson
//! ```

use std::process::ExitCode;

use xpipes_bench::baseline::load_baseline;
use xpipes_bench::checkpoint::{
    checkpoint_bench_json, parse_speedup, run_checkpoint_bench_observed, DEFAULT_RATES,
    DEFAULT_SEED, DEFAULT_WARMUP, DEFAULT_WINDOW,
};
use xpipes_bench::ledger;
use xpipes_bench::progress::{open_sink, SinkMode};

struct Args {
    rates: Vec<f64>,
    warmup: u64,
    window: u64,
    seed: u64,
    out: String,
    check: Option<String>,
    tolerance: f64,
    progress: Option<String>,
    ledger: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        rates: DEFAULT_RATES.to_vec(),
        warmup: DEFAULT_WARMUP,
        window: DEFAULT_WINDOW,
        seed: DEFAULT_SEED,
        out: "BENCH_checkpoint.json".to_string(),
        check: None,
        tolerance: 0.25,
        progress: None,
        ledger: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--rates" => {
                args.rates = value("--rates")?
                    .split(',')
                    .map(|r| {
                        r.trim()
                            .parse::<f64>()
                            .map_err(|e| format!("bad rate: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--warmup" => {
                args.warmup = value("--warmup")?
                    .parse()
                    .map_err(|e| format!("bad --warmup: {e}"))?;
            }
            "--window" => {
                args.window = value("--window")?
                    .parse()
                    .map_err(|e| format!("bad --window: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--check" => args.check = Some(value("--check")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
            }
            "--progress" => args.progress = Some(value("--progress")?),
            "--ledger" => args.ledger = Some(value("--ledger")?),
            "--help" | "-h" => {
                println!(
                    "usage: checkpoint_bench [--rates R,..] [--warmup N] [--window N] \
                     [--seed N] [--out PATH] [--check BASELINE.json] [--tolerance F] \
                     [--progress PATH] [--ledger PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut progress = match open_sink(args.progress.as_deref(), "progress", SinkMode::Truncate) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut ledger_sink = match open_sink(args.ledger.as_deref(), "ledger", SinkMode::Append) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let bench = match run_checkpoint_bench_observed(
        &args.rates,
        args.warmup,
        args.window,
        args.seed,
        progress.as_mut(),
    ) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: benchmark failed: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "cold sweep {:>8.3}s  warm-start sweep {:>8.3}s  speedup {:.2}x \
         ({} points, warmup {}, window {})",
        bench.cold_s,
        bench.warm_s,
        bench.speedup,
        bench.rates.len(),
        bench.warmup,
        bench.window
    );
    if let Some(sink) = ledger_sink.as_mut() {
        sink.emit(&ledger::checkpoint_record(&bench, args.seed));
    }
    // Read the baseline before writing the fresh report, so checking
    // against the default output path never compares a file against
    // itself.
    let check = match &args.check {
        Some(path) => {
            let baseline = match load_baseline(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            let Some(base) = parse_speedup(&baseline) else {
                eprintln!("error: baseline {path} has no speedup entry");
                return ExitCode::from(2);
            };
            Some(base)
        }
        None => None,
    };
    let report = checkpoint_bench_json(&bench).render();
    if let Err(e) = std::fs::write(&args.out, &report) {
        eprintln!("error: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    println!("report written to {}", args.out);
    if let Some(base) = check {
        let floor = (base * (1.0 - args.tolerance)).max(1.0);
        let status = if bench.speedup < floor {
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "check speedup: baseline {base:.2}x  current {:.2}x  floor {floor:.2}x  {status}",
            bench.speedup
        );
        if bench.speedup < floor {
            eprintln!(
                "error: warm-start speedup regressed below {floor:.2}x \
                 (baseline {base:.2}x, tolerance {:.0}%)",
                args.tolerance * 100.0
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
