//! Fault-injection campaign entry point.
//!
//! Runs the seeded fault-model × error-rate sweep with protocol
//! invariant monitoring on the reference network and prints the
//! machine-readable JSON report. Exits nonzero when any grid point
//! violates an invariant or fails to drain, so CI can gate on it.
//!
//! Grid points fan out across threads (`--jobs`, default: host
//! parallelism); reports are byte-identical to a serial run for the
//! same seed.
//!
//! `--resume DIR` makes the campaign crash-resumable: completed grid
//! points are journaled to `DIR/point-<index>.bin` (after every
//! `--checkpoint-every N` points), the shared warm-start checkpoint to
//! `DIR/warm.bin`, and the configuration fingerprint to
//! `DIR/meta.json`. Re-running the same command after a kill skips the
//! journaled points and produces a report byte-identical to an
//! uninterrupted run, regardless of `--jobs`.
//!
//! `--warm-start CYCLES` runs the fault-free warm-up once, checkpoints
//! it, and branches every grid point off the shared state (see
//! `xpipes_traffic::faultcampaign::WarmStart` for how this measurement
//! protocol differs from a cold campaign).
//!
//! `--progress PATH` streams a per-grid-point NDJSON status journal
//! (index, fault, rate, pass/fail, deterministic run counters) to PATH
//! — or stderr for `-` — as points complete. Every per-point field is a
//! pure function of the seed and grid index, so those lines are
//! byte-identical across `--jobs` worker counts. The stream ends with
//! one final-totals line (`"final": true`) carrying the campaign
//! verdict plus the worker pool's wall-clock utilization — the one line
//! that is *not* byte-compared, exactly like the `wall` section of a
//! ledger record. When resuming, the sink is opened in append mode and
//! only freshly executed points emit lines, so the journal from the
//! interrupted run is extended rather than truncated.
//!
//! `--ledger PATH` appends one schema-versioned run record (work
//! counters summed over the grid, verdict, baseline telemetry and
//! attribution digests, wall-clock rates and pool utilization) to the
//! shared run ledger; see `xpipes_bench::ledger` and `xpipesobs`.
//!
//! ```text
//! faultcampaign --faults all --cycles 20000 --seed 7
//! faultcampaign --faults ack-loss,output-stall --rates 0.01,0.05 --out report.json
//! faultcampaign --jobs 1   # force serial execution
//! faultcampaign --resume journal/ --checkpoint-every 2 --out report.json
//! faultcampaign --warm-start 4000 --resume journal/
//! faultcampaign --progress progress.ndjson --ledger ledger.ndjson
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use xpipes_bench::ledger;
use xpipes_bench::progress::{open_sink, SinkMode};
use xpipes_bench::ProgressStream;
use xpipes_sim::parallel::{parallel_map_ordered_stats, worker_count, PoolStats};
use xpipes_sim::{CampaignReport, FaultKind, Json};
use xpipes_traffic::faultcampaign::{
    assemble_report, campaign_spec, config_fingerprint, grid_size, progress_line,
    run_campaign_streaming, run_grid_point, warm_checkpoint, CampaignConfig, CompletedPoint,
    WarmStart,
};

struct Args {
    faults: Vec<FaultKind>,
    cycles: u64,
    seed: u64,
    rates: Option<Vec<f64>>,
    out: Option<String>,
    jobs: usize,
    flight_depth: Option<usize>,
    resume: Option<PathBuf>,
    checkpoint_every: u64,
    warm_start: u64,
    progress: Option<String>,
    ledger: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        faults: FaultKind::ALL.to_vec(),
        cycles: 20_000,
        seed: 7,
        rates: None,
        out: None,
        jobs: 0,
        flight_depth: None,
        resume: None,
        checkpoint_every: 0,
        warm_start: 0,
        progress: None,
        ledger: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--faults" => {
                let v = value("--faults")?;
                if v == "all" {
                    args.faults = FaultKind::ALL.to_vec();
                } else {
                    args.faults = v
                        .split(',')
                        .map(|name| {
                            FaultKind::from_name(name.trim())
                                .ok_or_else(|| format!("unknown fault model '{name}'"))
                        })
                        .collect::<Result<_, _>>()?;
                }
            }
            "--cycles" => {
                args.cycles = value("--cycles")?
                    .parse()
                    .map_err(|e| format!("bad --cycles: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--rates" => {
                let v = value("--rates")?;
                let rates = v
                    .split(',')
                    .map(|r| {
                        r.trim()
                            .parse::<f64>()
                            .map_err(|e| format!("bad rate: {e}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                args.rates = Some(rates);
            }
            "--out" => args.out = Some(value("--out")?),
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?;
            }
            "--flight-depth" => {
                args.flight_depth = Some(
                    value("--flight-depth")?
                        .parse()
                        .map_err(|e| format!("bad --flight-depth: {e}"))?,
                );
            }
            "--resume" => args.resume = Some(PathBuf::from(value("--resume")?)),
            "--checkpoint-every" => {
                args.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-every: {e}"))?;
                if args.checkpoint_every == 0 {
                    return Err("--checkpoint-every must be at least 1".into());
                }
            }
            "--warm-start" => {
                args.warm_start = value("--warm-start")?
                    .parse()
                    .map_err(|e| format!("bad --warm-start: {e}"))?;
                if args.warm_start == 0 {
                    return Err("--warm-start must be at least 1 cycle".into());
                }
            }
            "--progress" => args.progress = Some(value("--progress")?),
            "--ledger" => args.ledger = Some(value("--ledger")?),
            "--help" | "-h" => {
                println!(
                    "usage: faultcampaign [--faults all|NAME,..] [--cycles N] \
                     [--seed N] [--rates R,..] [--out PATH] [--jobs N] \
                     [--flight-depth N] [--resume DIR] [--checkpoint-every N] \
                     [--warm-start CYCLES] [--progress PATH] [--ledger PATH]\n\
                     fault models: {}",
                    FaultKind::ALL.map(|k| k.name()).join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.checkpoint_every > 0 && args.resume.is_none() {
        return Err("--checkpoint-every requires --resume DIR".into());
    }
    Ok(args)
}

/// Journal metadata: pins the campaign parameters a journal directory
/// was created with so a resume cannot silently mix grid points from
/// different configurations.
fn meta_json(fingerprint: u64, grid: u64, warm_cycles: u64) -> String {
    Json::object()
        .field("campaign", Json::str("faultcampaign"))
        .field("fingerprint", Json::str(format!("{fingerprint:016x}")))
        .field("grid", Json::UInt(grid))
        .field("warm_cycles", Json::UInt(warm_cycles))
        .build()
        .render()
}

fn check_meta(text: &str, fingerprint: u64, grid: u64, warm_cycles: u64) -> Result<(), String> {
    let doc = Json::parse(text).map_err(|e| format!("malformed meta.json: {e}"))?;
    let field_str = |key: &str| {
        doc.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("meta.json missing '{key}'"))
    };
    let field_u64 = |key: &str| {
        doc.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("meta.json missing '{key}'"))
    };
    let want = format!("{fingerprint:016x}");
    if field_str("fingerprint")? != want {
        return Err(format!(
            "journal was created with a different campaign configuration \
             (fingerprint {} != {want}); use a fresh --resume directory",
            field_str("fingerprint")?
        ));
    }
    if field_u64("grid")? != grid {
        return Err(format!(
            "journal grid size {} != {grid}; use a fresh --resume directory",
            field_u64("grid")?
        ));
    }
    if field_u64("warm_cycles")? != warm_cycles {
        return Err(format!(
            "journal warm-up {} cycles != --warm-start {warm_cycles}; \
             use a fresh --resume directory",
            field_u64("warm_cycles")?
        ));
    }
    Ok(())
}

fn point_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("point-{index}.bin"))
}

/// Loads or creates the shared warm-start checkpoint for a journal
/// directory, so a resumed campaign branches off byte-identical state.
fn journal_warm(
    dir: &Path,
    args: &Args,
    cfg: &CampaignConfig,
) -> Result<Option<WarmStart>, String> {
    if args.warm_start == 0 {
        return Ok(None);
    }
    let path = dir.join("warm.bin");
    if path.exists() {
        let bytes =
            std::fs::read(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let warm = WarmStart::from_bytes(&bytes)
            .map_err(|e| format!("damaged warm checkpoint {}: {e}", path.display()))?;
        if warm.cycles != args.warm_start {
            return Err(format!(
                "journal warm checkpoint covers {} cycles, --warm-start asked for {}",
                warm.cycles, args.warm_start
            ));
        }
        return Ok(Some(warm));
    }
    let warm = warm_checkpoint(&campaign_spec(), cfg, args.warm_start)
        .map_err(|e| format!("warm-up failed: {e}"))?;
    std::fs::write(&path, warm.to_bytes())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(Some(warm))
}

/// Runs (or resumes) the campaign against a journal directory. Grid
/// points already journaled are loaded back; the rest execute in
/// chunks of `--checkpoint-every`, each chunk fanned across `--jobs`
/// and journaled on completion, so a kill loses at most one chunk.
/// With `--progress`, only freshly executed points emit status lines —
/// the sink is opened in append mode, so the interrupted run's lines
/// stay in place and the resumed run extends them. The returned
/// [`PoolStats`] cover the fresh points only (journal loads cost no
/// pool time).
fn run_resumable(
    args: &Args,
    cfg: &CampaignConfig,
    progress: &mut Option<ProgressStream>,
) -> Result<(CampaignReport, PoolStats), String> {
    let dir = args.resume.as_deref().expect("resume dir");
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create journal directory {}: {e}", dir.display()))?;
    let spec = campaign_spec();
    let fingerprint = config_fingerprint(&spec, &args.faults, cfg);
    let grid = grid_size(&args.faults, cfg);
    let meta_path = dir.join("meta.json");
    match std::fs::read_to_string(&meta_path) {
        Ok(text) => check_meta(&text, fingerprint, grid, args.warm_start)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            std::fs::write(&meta_path, meta_json(fingerprint, grid, args.warm_start))
                .map_err(|e| format!("cannot write {}: {e}", meta_path.display()))?;
        }
        Err(e) => return Err(format!("cannot read {}: {e}", meta_path.display())),
    }
    let warm = journal_warm(dir, args, cfg)?;

    let mut points: Vec<CompletedPoint> = Vec::new();
    let mut remaining: Vec<u64> = Vec::new();
    for index in 0..grid {
        let path = point_path(dir, index);
        match std::fs::read(&path) {
            Ok(bytes) => match CompletedPoint::from_bytes(&bytes) {
                Ok(point) if point.index == index => points.push(point),
                Ok(point) => {
                    return Err(format!(
                        "{} holds grid point {}, expected {index}",
                        path.display(),
                        point.index
                    ));
                }
                Err(e) => {
                    // Most likely a kill mid-write: redo the point.
                    eprintln!(
                        "note: discarding damaged journal entry {} ({e})",
                        path.display()
                    );
                    remaining.push(index);
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => remaining.push(index),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        }
    }
    if !points.is_empty() {
        eprintln!(
            "journal: resuming with {}/{grid} grid points already complete",
            points.len()
        );
    }

    let workers = if args.jobs == 0 {
        worker_count(remaining.len().max(1))
    } else {
        args.jobs
    };
    let chunk_len = if args.checkpoint_every == 0 {
        workers.max(1)
    } else {
        args.checkpoint_every as usize
    };
    let mut pool = PoolStats::default();
    for chunk in remaining.chunks(chunk_len) {
        let (ran, stats) = parallel_map_ordered_stats(chunk, workers, |_, &index| {
            run_grid_point(&spec, &args.faults, cfg, index, warm.as_ref())
        });
        pool.merge(&stats);
        for done in ran {
            let point = done.map_err(|e| format!("grid point failed: {e}"))?;
            let path = point_path(dir, point.index);
            std::fs::write(&path, point.to_bytes())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            if let Some(p) = progress.as_mut() {
                p.emit(&progress_line(&args.faults, cfg, &point));
            }
            points.push(point);
        }
        eprintln!("journal: {}/{grid} grid points complete", points.len());
    }
    points.sort_by_key(|p| p.index);
    Ok((assemble_report(&spec, &args.faults, cfg, points), pool))
}

/// The stream's closing totals line: campaign verdict plus the worker
/// pool's wall-clock utilization. The only progress line that is not a
/// pure function of the seed — consumers byte-comparing journals across
/// `--jobs` must stop at `"final": true`, exactly as they skip a ledger
/// record's `wall` section.
fn final_line(report: &CampaignReport, grid: u64, pool: &PoolStats) -> Json {
    Json::object()
        .field("final", Json::Bool(true))
        .field("points", Json::UInt(1 + report.runs.len() as u64))
        .field("grid", Json::UInt(grid))
        .field("pass", Json::Bool(report.pass))
        .field("failures", Json::UInt(report.failures().count() as u64))
        .field("pool", pool.to_json())
        .build()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut cfg = CampaignConfig::new(args.seed, args.cycles);
    if let Some(rates) = &args.rates {
        cfg.error_rates = rates.clone();
    }
    if let Some(depth) = args.flight_depth {
        cfg.flight_recorder_depth = depth;
    }
    let sink_mode = if args.resume.is_some() {
        SinkMode::Append
    } else {
        SinkMode::Truncate
    };
    let mut progress = match open_sink(args.progress.as_deref(), "progress", sink_mode) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let started = Instant::now();
    let (report, pool) = if args.resume.is_some() {
        match run_resumable(&args, &cfg, &mut progress) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let warm = if args.warm_start > 0 {
            match warm_checkpoint(&campaign_spec(), &cfg, args.warm_start) {
                Ok(w) => Some(w),
                Err(e) => {
                    eprintln!("error: warm-up failed: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            None
        };
        let progress = &mut progress;
        let run = run_campaign_streaming(
            &campaign_spec(),
            &args.faults,
            &cfg,
            warm.as_ref(),
            args.jobs,
            &mut |point| {
                if let Some(p) = progress.as_mut() {
                    p.emit(&progress_line(&args.faults, &cfg, point));
                }
            },
        );
        match run {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: campaign failed to assemble: {e}");
                return ExitCode::from(2);
            }
        }
    };
    let elapsed_s = started.elapsed().as_secs_f64();
    if let Some(p) = progress.as_mut() {
        p.emit(&final_line(&report, grid_size(&args.faults, &cfg), &pool));
    }
    // A resumable campaign appends its ledger record at most once per
    // journal: a run killed after the append and resumed to completion
    // finds the journal's marker and skips the duplicate.
    let fingerprint = config_fingerprint(&campaign_spec(), &args.faults, &cfg);
    let already_recorded = args
        .resume
        .as_deref()
        .is_some_and(|dir| ledger::campaign_ledger_recorded(dir, fingerprint));
    if already_recorded && args.ledger.is_some() {
        eprintln!("journal: ledger record already appended by an earlier run; skipping");
    } else {
        match open_sink(args.ledger.as_deref(), "ledger", SinkMode::Append) {
            Ok(Some(mut sink)) => {
                sink.emit(&ledger::campaign_record(
                    &report,
                    fingerprint,
                    elapsed_s,
                    Some(pool.to_json()),
                ));
                if let Some(dir) = args.resume.as_deref() {
                    if let Err(e) = ledger::record_campaign_ledger_appended(dir, fingerprint) {
                        eprintln!("error: cannot mark ledger append in {}: {e}", dir.display());
                        return ExitCode::from(2);
                    }
                }
            }
            Ok(None) => {}
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let json = report.to_json();
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    print!("{json}");
    if report.pass {
        ExitCode::SUCCESS
    } else {
        for run in report.failures() {
            eprintln!(
                "FAIL {} @ {:.4}: {}",
                run.fault,
                run.rate,
                run.violations.join("; ")
            );
        }
        ExitCode::FAILURE
    }
}
