//! Fault-injection campaign entry point.
//!
//! Runs the seeded fault-model × error-rate sweep with protocol
//! invariant monitoring on the reference network and prints the
//! machine-readable JSON report. Exits nonzero when any grid point
//! violates an invariant or fails to drain, so CI can gate on it.
//!
//! Grid points fan out across threads (`--jobs`, default: host
//! parallelism); reports are byte-identical to a serial run for the
//! same seed.
//!
//! ```text
//! faultcampaign --faults all --cycles 20000 --seed 7
//! faultcampaign --faults ack-loss,output-stall --rates 0.01,0.05 --out report.json
//! faultcampaign --jobs 1   # force serial execution
//! ```

use std::process::ExitCode;

use xpipes_sim::FaultKind;
use xpipes_traffic::faultcampaign::{campaign_spec, run_campaign_parallel, CampaignConfig};

struct Args {
    faults: Vec<FaultKind>,
    cycles: u64,
    seed: u64,
    rates: Option<Vec<f64>>,
    out: Option<String>,
    jobs: usize,
    flight_depth: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        faults: FaultKind::ALL.to_vec(),
        cycles: 20_000,
        seed: 7,
        rates: None,
        out: None,
        jobs: 0,
        flight_depth: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--faults" => {
                let v = value("--faults")?;
                if v == "all" {
                    args.faults = FaultKind::ALL.to_vec();
                } else {
                    args.faults = v
                        .split(',')
                        .map(|name| {
                            FaultKind::from_name(name.trim())
                                .ok_or_else(|| format!("unknown fault model '{name}'"))
                        })
                        .collect::<Result<_, _>>()?;
                }
            }
            "--cycles" => {
                args.cycles = value("--cycles")?
                    .parse()
                    .map_err(|e| format!("bad --cycles: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--rates" => {
                let v = value("--rates")?;
                let rates = v
                    .split(',')
                    .map(|r| {
                        r.trim()
                            .parse::<f64>()
                            .map_err(|e| format!("bad rate: {e}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                args.rates = Some(rates);
            }
            "--out" => args.out = Some(value("--out")?),
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?;
            }
            "--flight-depth" => {
                args.flight_depth = Some(
                    value("--flight-depth")?
                        .parse()
                        .map_err(|e| format!("bad --flight-depth: {e}"))?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: faultcampaign [--faults all|NAME,..] [--cycles N] \
                     [--seed N] [--rates R,..] [--out PATH] [--jobs N] \
                     [--flight-depth N]\n\
                     fault models: {}",
                    FaultKind::ALL.map(|k| k.name()).join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut cfg = CampaignConfig::new(args.seed, args.cycles);
    if let Some(rates) = args.rates {
        cfg.error_rates = rates;
    }
    if let Some(depth) = args.flight_depth {
        cfg.flight_recorder_depth = depth;
    }
    let report = match run_campaign_parallel(&campaign_spec(), &args.faults, &cfg, args.jobs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: campaign failed to assemble: {e}");
            return ExitCode::from(2);
        }
    };
    let json = report.to_json();
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    print!("{json}");
    if report.pass {
        ExitCode::SUCCESS
    } else {
        for run in report.failures() {
            eprintln!(
                "FAIL {} @ {:.4}: {}",
                run.fault,
                run.rate,
                run.violations.join("; ")
            );
        }
        ExitCode::FAILURE
    }
}
