//! E7 — "Shift Efforts at a Higher Abstraction Layer": comparing sample
//! xpipes topologies for one application through the SunMap flow. The
//! paper's anchors: one mesh variant at 925 MHz / 0.51 mm² (+10%
//! performance), another at 850 MHz / 0.42 mm² (−14% area), and a custom
//! topology with fewer clock cycles of latency but a slower clock
//! (780 MHz / 0.48 mm²).

use criterion::{black_box, Criterion};
use xpipes_bench::experiments::{e7_eval_config, topology_comparison};
use xpipes_bench::Table;
use xpipes_sunmap::apps;
use xpipes_sunmap::selection::custom_topology;

fn print_tables() {
    let rows = topology_comparison(&e7_eval_config()).expect("comparison");
    println!("\n== E7: sample xpipes topologies (VOPD) ==");
    let mut t = Table::new(&[
        "candidate",
        "fabric (mm²)",
        "total (mm²)",
        "clock (MHz)",
        "latency (cyc)",
        "latency (ns)",
        "thruput (pkt/µs)",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.name.clone(),
            format!("{:.3}", r.fabric_area_mm2),
            format!("{:.3}", r.total_area_mm2),
            format!("{:.0}", r.fmax_mhz),
            format!("{:.1}", r.latency_cycles),
            format!("{:.1}", r.latency_ns),
            format!("{:.2}", r.throughput_pkt_per_us),
        ]);
    }
    print!("{t}");
    println!(
        "\npaper shape: bigger mesh trades area for clock/performance; the custom \
         topology needs the fewest cycles but runs the slowest clock\n"
    );
}

fn main() {
    print_tables();
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("custom_topology_vopd", |b| {
        let graph = apps::vopd().expect("app builds");
        b.iter(|| custom_topology(black_box(&graph), 32, 3).expect("constructible"))
    });
    c.final_summary();
}
