//! A1 — arbitration ablation: fixed priority vs round robin under
//! hotspot contention. The paper offers both ("Arbitration: Fixed / RR");
//! round robin buys fairness (tighter per-initiator latency spread) at a
//! slightly deeper arbiter.

use criterion::{black_box, Criterion};
use xpipes::Arbiter;
use xpipes_bench::experiments::ablation_arbitration;
use xpipes_bench::Table;
use xpipes_topology::spec::Arbitration;

fn print_tables() {
    let rows = ablation_arbitration(0.05).expect("ablation");
    println!("\n== A1: arbitration policy under hotspot traffic ==");
    let mut t = Table::new(&[
        "policy",
        "mean latency (cyc)",
        "best initiator (cyc)",
        "worst initiator (cyc)",
        "spread",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.policy.to_string(),
            format!("{:.1}", r.mean_latency),
            format!("{:.1}", r.best_initiator_latency),
            format!("{:.1}", r.worst_initiator_latency),
            format!(
                "{:.2}x",
                r.worst_initiator_latency / r.best_initiator_latency.max(1e-9)
            ),
        ]);
    }
    print!("{t}");
    println!();
}

fn main() {
    print_tables();
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("round_robin_grant_6way", |b| {
        let mut arb = Arbiter::new(Arbitration::RoundRobin, 6);
        let requests = [true, false, true, true, false, true];
        b.iter(|| arb.grant(black_box(&requests)))
    });
    c.final_summary();
}
