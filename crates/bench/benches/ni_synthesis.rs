//! E1 + E2 — "NI Synthesis Results": area (mm²) and power (mW) of the
//! initiator and target network interfaces across the paper's flit-width
//! sweep (16/32/64/128), synthesized for the 1 GHz @ 130 nm target.

use criterion::{black_box, Criterion};
use xpipes::config::NiConfig;
use xpipes_bench::experiments::{ni_synthesis, FLIT_WIDTHS, TARGET_MHZ};
use xpipes_bench::Table;
use xpipes_synth::components::initiator_ni_netlist;
use xpipes_synth::report::synthesize;

fn print_tables() {
    let rows = ni_synthesis(&FLIT_WIDTHS).expect("NI synthesis");

    println!("\n== E1: NI synthesis — area (mm²) ==");
    let mut area = Table::new(&["flit width", "initiator NI", "target NI"]);
    for r in &rows {
        area.row_owned(vec![
            r.flit_width.to_string(),
            format!("{:.4}", r.initiator.area_mm2),
            format!("{:.4}", r.target.area_mm2),
        ]);
    }
    print!("{area}");

    println!("\n== E2: NI synthesis — power (mW @ 1 GHz) ==");
    let mut power = Table::new(&["flit width", "initiator NI", "target NI"]);
    for r in &rows {
        power.row_owned(vec![
            r.flit_width.to_string(),
            format!("{:.2}", r.initiator.power_mw),
            format!("{:.2}", r.target.power_mw),
        ]);
    }
    print!("{power}");
    println!(
        "\npaper anchors: area grows with flit width; initiator > target; \
         NI meets 1 GHz (measured fmax {:.0} MHz at w=32)\n",
        rows[1].initiator.fmax_mhz
    );
}

fn main() {
    print_tables();
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("synthesize_initiator_ni_w32", |b| {
        let netlist = initiator_ni_netlist(&NiConfig::new(32));
        b.iter(|| synthesize(black_box(&netlist), TARGET_MHZ).expect("reachable"))
    });
    c.final_summary();
}
