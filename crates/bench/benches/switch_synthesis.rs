//! E3 + E4 + E9 — "Switch Synthesis Results": area (mm²), power (mW) and
//! achievable frequency of the paper's switch configurations (4x4, 6x4,
//! 5x5) across the flit-width sweep.

use criterion::{black_box, Criterion};
use xpipes::config::SwitchConfig;
use xpipes_bench::experiments::{switch_synthesis, FLIT_WIDTHS, TARGET_MHZ};
use xpipes_bench::Table;
use xpipes_synth::components::switch_netlist;
use xpipes_synth::report::synthesize;

fn print_tables() {
    let configs = [(4usize, 4usize), (6, 4), (5, 5)];
    let rows = switch_synthesis(&configs, &FLIT_WIDTHS).expect("switch synthesis");

    println!("\n== E3: switch synthesis — area (mm²) ==");
    let mut area = Table::new(&["switch", "w=16", "w=32", "w=64", "w=128"]);
    for &(i, o) in &configs {
        let cells: Vec<String> = std::iter::once(format!("{i}x{o}"))
            .chain(
                rows.iter()
                    .filter(|r| r.inputs == i && r.outputs == o)
                    .map(|r| format!("{:.4}", r.report.area_mm2)),
            )
            .collect();
        area.row_owned(cells);
    }
    print!("{area}");

    println!("\n== E4: switch synthesis — power (mW @ 1 GHz) ==");
    let mut power = Table::new(&["switch", "w=16", "w=32", "w=64", "w=128"]);
    for &(i, o) in &configs {
        let cells: Vec<String> = std::iter::once(format!("{i}x{o}"))
            .chain(
                rows.iter()
                    .filter(|r| r.inputs == i && r.outputs == o)
                    .map(|r| format!("{:.1}", r.report.power_mw)),
            )
            .collect();
        power.row_owned(cells);
    }
    print!("{power}");

    println!("\n== E9: achievable frequency (MHz, max effort) ==");
    let mut fmax = Table::new(&["switch", "w=16", "w=32", "w=64", "w=128"]);
    for &(i, o) in &configs {
        let cells: Vec<String> = std::iter::once(format!("{i}x{o}"))
            .chain(
                rows.iter()
                    .filter(|r| r.inputs == i && r.outputs == o)
                    .map(|r| format!("{:.0}", r.fmax_mhz)),
            )
            .collect();
        fmax.row_owned(cells);
    }
    print!("{fmax}");

    let f44 = rows
        .iter()
        .find(|r| r.inputs == 4 && r.flit_width == 32)
        .expect("4x4 row");
    let f64_ = rows
        .iter()
        .find(|r| r.inputs == 6 && r.flit_width == 32)
        .expect("6x4 row");
    println!(
        "\npaper anchors: 4x4 @ 1 GHz (measured fmax {:.0} MHz); 6x4 at 875–980 MHz \
         relative to the 4x4's 1 GHz (measured ratio {:.2})\n",
        f44.fmax_mhz,
        f64_.fmax_mhz / f44.fmax_mhz
    );
}

fn main() {
    print_tables();
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("synthesize_switch_4x4_w32", |b| {
        let netlist = switch_netlist(&SwitchConfig::new(4, 4, 32));
        b.iter(|| synthesize(black_box(&netlist), TARGET_MHZ).expect("reachable"))
    });
    c.final_summary();
}
