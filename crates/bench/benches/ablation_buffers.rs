//! A3 — output-queue depth ablation: the paper's switch is output-queued
//! with "buffering for performance"; this sweep shows saturation
//! throughput growing with queue depth, and the silicon it costs.

use criterion::{black_box, Criterion};
use xpipes::config::SwitchConfig;
use xpipes::switch::Switch;
use xpipes_bench::experiments::ablation_buffers;
use xpipes_bench::Table;

fn print_tables() {
    let depths = [2, 4, 6, 10];
    let rows = ablation_buffers(&depths).expect("ablation");
    println!("\n== A3: output queue depth vs throughput and area ==");
    let mut t = Table::new(&[
        "queue depth (flits)",
        "accepted @ heavy load (pkt/cyc)",
        "mean latency (cyc)",
        "4x4x32 switch area (mm²)",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.depth.to_string(),
            format!("{:.3}", r.accepted),
            format!("{:.1}", r.mean_latency),
            format!("{:.4}", r.switch_area_mm2),
        ]);
    }
    print!("{t}");
    println!();
}

fn main() {
    print_tables();
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("switch_instantiation_4x4_w32", |b| {
        b.iter(|| Switch::new(black_box(SwitchConfig::new(4, 4, 32))))
    });
    c.final_summary();
}
