//! A5 — flit-width ablation: the performance side of the paper's flit
//! sweep. Wider links serialize a transaction into fewer flits, cutting
//! latency, while datapath area grows near-linearly (E5 measures the
//! area side).

use criterion::{black_box, Criterion};
use xpipes::header::Header;
use xpipes::packet::{packetize, Packet};
use xpipes_bench::experiments::ablation_flit_width;
use xpipes_bench::Table;
use xpipes_ocp::{MCmd, Sideband, ThreadId};
use xpipes_sim::Cycle;
use xpipes_topology::route::SourceRoute;
use xpipes_topology::PortId;

fn print_tables() {
    let rows = ablation_flit_width(&[16, 32, 64, 128]).expect("ablation");
    println!("\n== A5: flit width vs latency and area ==");
    let mut t = Table::new(&[
        "flit width",
        "mean latency (cyc)",
        "flits / 4-beat write",
        "4x4 switch area (mm²)",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.width.to_string(),
            format!("{:.1}", r.mean_latency),
            r.flits_per_packet.to_string(),
            format!("{:.4}", r.switch_area_mm2),
        ]);
    }
    print!("{t}");
    println!();
}

fn main() {
    print_tables();
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("packetize_4beat_write_w32", |b| {
        let route = SourceRoute::new(vec![PortId(1)]).expect("valid");
        let header = Header::request(&route, 0, MCmd::Write, 4, ThreadId(0), 0, Sideband::NONE)
            .expect("valid");
        let packet = Packet::new(1, header, Some(0x40), vec![1, 2, 3, 4]);
        b.iter(|| packetize(black_box(&packet), 32, 32, Cycle::ZERO).expect("encodable"))
    });
    c.final_summary();
}
