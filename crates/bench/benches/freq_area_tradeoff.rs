//! E6 — "Full Custom vs Macro Based NoCs": the area-vs-target-frequency
//! tradeoff of a 32-bit 5x5 switch (the paper's banana curve spanning
//! ~0.10–0.18 mm² from relaxed clocks up to ~1.4 GHz).

use criterion::{black_box, Criterion};
use xpipes::config::SwitchConfig;
use xpipes_bench::experiments::freq_area_tradeoff;
use xpipes_bench::Table;
use xpipes_synth::components::switch_netlist;
use xpipes_synth::sizing::best_period_ps;

fn print_tables() {
    let targets = [
        200.0, 400.0, 600.0, 800.0, 1000.0, 1100.0, 1200.0, 1300.0, 1400.0,
    ];
    let pts = freq_area_tradeoff(&targets).expect("tradeoff sweep");
    println!("\n== E6: 32-bit 5x5 switch — area vs target frequency ==");
    let mut t = Table::new(&["target (MHz)", "area (mm²)", "met"]);
    for (mhz, area, met) in &pts {
        t.row_owned(vec![
            format!("{mhz:.0}"),
            format!("{area:.4}"),
            if *met {
                "yes".into()
            } else {
                "best-effort".into()
            },
        ]);
    }
    print!("{t}");
    let lo = pts.first().expect("points").1;
    let hi = pts.iter().map(|p| p.1).fold(0.0, f64::max);
    println!("\nband: {lo:.3}–{hi:.3} mm² (paper: 0.10–0.18 mm² over 0–1500 MHz)\n");
}

fn main() {
    print_tables();
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("max_effort_sizing_5x5_w32", |b| {
        b.iter(|| {
            let mut netlist = switch_netlist(black_box(&SwitchConfig::new(5, 5, 32)));
            best_period_ps(&mut netlist).expect("timeable")
        })
    });
    c.final_summary();
}
