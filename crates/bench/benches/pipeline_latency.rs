//! E8 — "Lower Latency (7 to 2 stage switches)": the xpipes Lite redesign
//! cut the switch pipeline from 7 stages to 2; this bench measures the
//! end-to-end effect of that change on a read transaction.

use criterion::{black_box, Criterion};
use xpipes::noc::Noc;
use xpipes_bench::experiments::{eval_mesh, pipeline_latency};
use xpipes_bench::Table;
use xpipes_ocp::Request;
use xpipes_topology::NiKind;

fn print_tables() {
    let p = pipeline_latency().expect("latency measurement");
    println!("\n== E8: switch pipeline depth — transaction latency ==");
    let mut t = Table::new(&["switch generation", "read round trip (cycles)"]);
    t.row_owned(vec![
        "xpipes Lite (2-stage)".into(),
        format!("{:.1}", p.lite_cycles),
    ]);
    t.row_owned(vec![
        "first-gen (7-stage)".into(),
        format!("{:.1}", p.legacy_cycles),
    ]);
    print!("{t}");
    println!(
        "\nlatency saved: {:.1} cycles over 4 switch traversals ({:.1} per traversal; \
         paper: 5 stages removed per switch)\n",
        p.legacy_cycles - p.lite_cycles,
        (p.legacy_cycles - p.lite_cycles) / 4.0
    );
}

fn main() {
    print_tables();
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("simulate_read_4x4_mesh", |b| {
        let spec = eval_mesh(4).expect("mesh");
        let cpu = spec
            .topology
            .nis_of_kind(NiKind::Initiator)
            .next()
            .expect("has initiators")
            .ni;
        b.iter(|| {
            let mut noc = Noc::new(black_box(&spec)).expect("instantiable");
            noc.submit(cpu, Request::read(0x0, 4).expect("valid"))
                .expect("mapped");
            noc.run_until_idle(10_000)
        })
    });
    c.final_summary();
}
