//! A4 — link pipelining ablation: the paper's links are pipelined so the
//! clock never waits on a long wire. Deeper pipes extend physical reach
//! at 1 GHz but add per-hop latency and grow the ACK/nACK retransmission
//! window (2·depth + 2 flits per output).

use criterion::{black_box, Criterion};
use xpipes::config::LinkConfig;
use xpipes::link::Link;
use xpipes_bench::experiments::ablation_link_pipeline;
use xpipes_bench::Table;
use xpipes_sim::SimRng;

fn print_tables() {
    let rows = ablation_link_pipeline(&[1, 2, 3, 4]).expect("ablation");
    println!("\n== A4: link pipeline depth ==");
    let mut t = Table::new(&[
        "stages",
        "mean latency (cyc)",
        "reach @ 1 GHz (mm)",
        "retransmit buffer (flits)",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.stages.to_string(),
            format!("{:.1}", r.mean_latency),
            format!("{:.1}", r.reach_mm_at_1ghz),
            r.retransmit_depth.to_string(),
        ]);
    }
    print!("{t}");
    println!();
}

fn main() {
    print_tables();
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("link_shift_2stage", |b| {
        let mut link = Link::new(LinkConfig::new(2), SimRng::seed(1));
        b.iter(|| link.shift(black_box(None), None))
    });
    c.final_summary();
}
