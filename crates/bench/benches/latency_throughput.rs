//! P1 — standard NoC evaluation: load–latency curves on a 4x4 mesh under
//! uniform, transpose and hotspot traffic. Not a figure in the DATE'05
//! deck, but the canonical performance characterisation of any wormhole
//! NoC and the regression anchor for the simulator.

use criterion::{black_box, Criterion};
use xpipes_bench::experiments::{eval_mesh, load_latency};
use xpipes_bench::Table;
use xpipes_traffic::pattern::Pattern;
use xpipes_traffic::runner::measure;

fn print_tables() {
    let rates = [0.005, 0.01, 0.02, 0.04, 0.08, 0.15];
    for pattern in [
        Pattern::Uniform,
        Pattern::Transpose,
        Pattern::Hotspot {
            target: 0,
            fraction: 0.5,
        },
    ] {
        let pts = load_latency(pattern, &rates).expect("sweep");
        println!(
            "\n== P1: load–latency, 4x4 mesh, {} traffic ==",
            pattern.name()
        );
        let mut t = Table::new(&[
            "offered (pkt/cyc/node)",
            "accepted (pkt/cyc)",
            "avg latency (cyc)",
            "p95 (cyc)",
            "max (cyc)",
        ]);
        for p in &pts {
            t.row_owned(vec![
                format!("{:.3}", p.offered),
                format!("{:.3}", p.accepted_packets_per_cycle),
                format!("{:.1}", p.avg_latency_cycles),
                format!("{:.0}", p.p95_latency_cycles),
                format!("{:.0}", p.max_latency_cycles),
            ]);
        }
        print!("{t}");
    }
    println!();
}

fn main() {
    print_tables();
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("measure_uniform_point_4x4", |b| {
        let spec = eval_mesh(4).expect("mesh");
        b.iter(|| measure(black_box(&spec), Pattern::Uniform, 0.02, 100, 500, 3).expect("measured"))
    });
    c.final_summary();
}
