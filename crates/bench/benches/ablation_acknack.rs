//! A2 — ACK/nACK ablation: the switch is "designed for pipelined,
//! unreliable links"; this sweep injects rising flit error rates and
//! shows lossless delivery at the cost of retransmissions and latency.

use criterion::{black_box, Criterion};
use xpipes::flow_control::{AckNack, LinkTx};
use xpipes::{Flit, FlitKind, FlitMeta};
use xpipes_bench::experiments::ablation_acknack;
use xpipes_bench::Table;
use xpipes_sim::Cycle;

fn print_tables() {
    let rates = [0.0, 0.001, 0.01, 0.05];
    let rows = ablation_acknack(&rates).expect("ablation");
    println!("\n== A2: link error rate vs ACK/nACK cost ==");
    let mut t = Table::new(&[
        "error rate",
        "packets delivered",
        "retransmitted flits",
        "mean latency (cyc)",
    ]);
    for r in &rows {
        t.row_owned(vec![
            format!("{:.3}", r.error_rate),
            r.delivered.to_string(),
            r.retransmissions.to_string(),
            format!("{:.1}", r.mean_latency),
        ]);
    }
    print!("{t}");
    println!("\nall error rates deliver the full traffic: the protocol is lossless\n");
}

fn main() {
    print_tables();
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("acknack_tx_cycle", |b| {
        let mut tx = LinkTx::new(4);
        let flit = Flit::new(FlitKind::Single, 7, FlitMeta::new(0, Cycle::ZERO, 0));
        b.iter(|| {
            let sent = tx.transmit(Some(black_box(flit))).expect("ready");
            tx.process(Some(AckNack {
                seq: sent.seq,
                ack: true,
            }));
        })
    });
    c.final_summary();
}
