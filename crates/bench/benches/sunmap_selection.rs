//! The full SunMap flow over the bundled application suite: for each
//! task graph, generate mesh/torus/custom candidates, evaluate them
//! (synthesis + floorplan + simulation), and report the selected
//! topology — the paper's "Complete Synthesis Oriented Design Flow for
//! NoCs / Automatic NoC Generation from Application Graph" conclusion,
//! exercised end to end.

use criterion::{black_box, Criterion};
use xpipes_bench::experiments::run_selection;
use xpipes_bench::Table;
use xpipes_sunmap::apps;
use xpipes_sunmap::mapping::map_to_mesh;

fn print_tables() {
    println!("\n== SunMap selection across the application suite ==");
    let mut t = Table::new(&[
        "application",
        "winner",
        "area (mm²)",
        "clock (MHz)",
        "latency (ns)",
        "candidates",
    ]);
    for app in ["mpeg4", "vopd", "mwd", "pip", "h263enc", "d26"] {
        match run_selection(app) {
            Ok(outcome) => {
                let w = outcome.winner();
                t.row_owned(vec![
                    app.to_string(),
                    w.name.clone(),
                    format!("{:.3}", w.area_mm2),
                    format!("{:.0}", w.fmax_mhz),
                    format!("{:.1}", w.avg_latency_ns),
                    format!("{}+{}", outcome.reports.len(), outcome.failures.len()),
                ]);
            }
            Err(e) => {
                t.row_owned(vec![app.to_string(), format!("failed: {e}")]);
            }
        }
    }
    print!("{t}");
    println!();
}

fn main() {
    print_tables();
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("anneal_vopd_3x4", |b| {
        let graph = apps::vopd().expect("app builds");
        b.iter(|| map_to_mesh(black_box(&graph), 3, 4, 1, 7).expect("fits"))
    });
    c.final_summary();
}
