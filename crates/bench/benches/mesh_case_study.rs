//! E5 — "The Power of Abstraction: Mesh Case Study": per-component area
//! across flit widths, and the paper's headline claim that a 3x4 xpipes
//! mesh serving 8 processors and 11 slaves occupies ~2.6 mm² (with the
//! initiator NI / target NI / 4x4 switch at 1 GHz and the 6x4 switch at
//! 875–980 MHz).

use criterion::{black_box, Criterion};
use xpipes_bench::experiments::mesh_case_study;
use xpipes_bench::Table;
use xpipes_sunmap::{apps, build_spec, map_to_mesh};

fn print_tables() {
    let study = mesh_case_study().expect("mesh case study");

    println!("\n== E5: component area vs flit width (mm²) ==");
    let mut t = Table::new(&[
        "flit width",
        "initiator NI",
        "target NI",
        "4x4 switch",
        "6x4 switch",
    ]);
    for (w, ini, tgt, s44, s64) in &study.component_rows {
        t.row_owned(vec![
            w.to_string(),
            format!("{ini:.4}"),
            format!("{tgt:.4}"),
            format!("{s44:.4}"),
            format!("{s64:.4}"),
        ]);
    }
    print!("{t}");

    for (w, total) in &study.mesh_totals_mm2 {
        println!(
            "\n3x4 mesh, 8 processors + 11 slaves, {w}-bit flits: {total:.2} mm² \
             (paper: ~2.6 mm²)"
        );
    }
    println!(
        "frequencies (32-bit, max effort): NI {:.0} MHz, 4x4 {:.0} MHz, 6x4 {:.0} MHz \
         (6x4/4x4 ratio {:.2}; paper: 875–980 MHz vs 1 GHz)\n",
        study.fmax_ni_mhz,
        study.fmax_4x4_mhz,
        study.fmax_6x4_mhz,
        study.fmax_6x4_mhz / study.fmax_4x4_mhz
    );
}

fn main() {
    print_tables();
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("map_d26_onto_3x4_mesh", |b| {
        let graph = apps::d26_media_soc().expect("app builds");
        b.iter(|| {
            let m = map_to_mesh(black_box(&graph), 3, 4, 2, 1).expect("fits");
            build_spec(&graph, &m, 64).expect("valid spec")
        })
    });
    c.final_summary();
}
