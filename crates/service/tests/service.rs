//! Campaign-service integration contract.
//!
//! The service's promises are distribution-shaped, so this suite runs
//! real servers and real workers (in-process threads over real TCP,
//! plus one test through the actual `xpipesd`/`xpipesadm` binaries):
//!
//! * a campaign sharded across two workers merges to a report
//!   byte-identical to the serial one-shot run — including with a
//!   warm-start `XPSN` checkpoint shipped to every worker;
//! * a worker killed mid-point gets its shard reassigned and the
//!   report is unchanged;
//! * a truncated or bit-flipped `XPSN` container at the distribution
//!   boundary is rejected with a one-line error (no panic) and the
//!   point is rescheduled;
//! * two concurrent campaigns share the pool fairly and produce
//!   correct, non-interleaved reports;
//! * pause/resume/cancel steer scheduling; resubmitting a finished
//!   campaign resumes from its journal and appends exactly one ledger
//!   record.

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::thread::JoinHandle;

use xpipes_service::client;
use xpipes_service::proto;
use xpipes_service::spec::CampaignSpec;
use xpipes_service::worker::{execute, run_worker, Assignment};
use xpipes_service::{Server, ServerConfig};
use xpipes_sim::Json;
use xpipes_traffic::faultcampaign::{
    campaign_spec, run_campaign, run_campaign_warm, warm_checkpoint,
};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xpipes_service_it_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Starts an in-process server with its state under a fresh temp dir.
fn start_server(name: &str, ledger: Option<&str>) -> (Server, String) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let mut cfg = ServerConfig::new(temp_dir(name).join("state"));
    cfg.ledger = ledger.map(String::from);
    let server = Server::start(listener, cfg).expect("server starts");
    let addr = server.addr().to_string();
    (server, addr)
}

fn spawn_worker(addr: &str) -> JoinHandle<Result<(), String>> {
    let addr = addr.to_string();
    std::thread::spawn(move || run_worker(&addr))
}

/// A small two-fault campaign: grid of 3 points (baseline + 2).
fn small_spec(name: &str, seed: u64) -> Json {
    Json::parse(&format!(
        r#"{{"name":"{name}","faults":["flit-corruption","ack-loss"],
            "cycles":500,"seed":{seed},"rates":[0.02]}}"#
    ))
    .expect("valid spec")
}

/// The serial one-shot report for a spec — the byte-identity reference.
fn reference_report(spec_json: &Json) -> String {
    let spec = CampaignSpec::from_json(spec_json).expect("valid spec");
    let cfg = spec.config();
    if spec.warm_start > 0 {
        let warm = warm_checkpoint(&campaign_spec(), &cfg, spec.warm_start).expect("warm-up");
        run_campaign_warm(&campaign_spec(), &spec.faults, &cfg, &warm)
            .expect("reference campaign")
            .to_json()
    } else {
        run_campaign(&campaign_spec(), &spec.faults, &cfg)
            .expect("reference campaign")
            .to_json()
    }
}

fn submit_id(addr: &str, spec: &Json) -> u64 {
    let reply = client::submit(addr, spec).expect("submit accepted");
    reply.get("id").and_then(Json::as_u64).expect("reply id")
}

/// Watches a campaign to completion; returns (done message, progress lines).
fn watch_done(addr: &str, id: u64) -> (Json, Vec<Json>) {
    let mut lines = Vec::new();
    let done = client::watch(addr, id, &mut |line| lines.push(line.clone())).expect("watch");
    (done, lines)
}

#[test]
fn sharded_campaign_is_byte_identical_to_one_shot() {
    let (server, addr) = start_server("shard", None);
    let workers = [spawn_worker(&addr), spawn_worker(&addr)];
    let spec = small_spec("shard", 11);
    let id = submit_id(&addr, &spec);

    let (done, lines) = watch_done(&addr, id);
    assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));
    assert!(
        matches!(done.get("pass"), Some(Json::Bool(true))),
        "{done:?}"
    );
    // The watch stream is the deterministic ascending-order journal.
    let points: Vec<u64> = lines
        .iter()
        .map(|l| l.get("point").and_then(Json::as_u64).unwrap())
        .collect();
    assert_eq!(points, vec![0, 1, 2]);

    let (pass, bytes) = client::fetch_report(&addr, id).expect("report");
    assert!(pass);
    assert_eq!(String::from_utf8(bytes).unwrap(), reference_report(&spec));

    server.shutdown();
    for w in workers {
        w.join().unwrap().expect("worker exits cleanly");
    }
}

#[test]
fn warm_start_checkpoint_ships_to_workers_byte_identically() {
    let (server, addr) = start_server("warm", None);
    let workers = [spawn_worker(&addr), spawn_worker(&addr)];
    let spec = Json::parse(
        r#"{"name":"warm","faults":["flit-corruption"],"cycles":400,
            "seed":31,"rates":[0.02],"warm_start":300}"#,
    )
    .unwrap();
    let id = submit_id(&addr, &spec);
    let (done, _) = watch_done(&addr, id);
    assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));
    let (_, bytes) = client::fetch_report(&addr, id).expect("report");
    assert_eq!(String::from_utf8(bytes).unwrap(), reference_report(&spec));
    server.shutdown();
    for w in workers {
        w.join().unwrap().expect("worker exits cleanly");
    }
}

#[test]
fn two_concurrent_campaigns_merge_without_interleaving() {
    let (server, addr) = start_server("tenants", None);
    let workers = [spawn_worker(&addr), spawn_worker(&addr)];
    let spec_a = small_spec("tenant-a", 11);
    let spec_b = Json::parse(
        r#"{"name":"tenant-b","faults":["ack-corruption","output-stall"],
            "cycles":500,"seed":23,"rates":[0.01]}"#,
    )
    .unwrap();
    let id_a = submit_id(&addr, &spec_a);
    let id_b = submit_id(&addr, &spec_b);
    assert_ne!(id_a, id_b);

    let (done_a, _) = watch_done(&addr, id_a);
    let (done_b, _) = watch_done(&addr, id_b);
    assert_eq!(done_a.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(done_b.get("state").and_then(Json::as_str), Some("done"));

    let (_, bytes_a) = client::fetch_report(&addr, id_a).expect("report a");
    let (_, bytes_b) = client::fetch_report(&addr, id_b).expect("report b");
    let (report_a, report_b) = (
        String::from_utf8(bytes_a).unwrap(),
        String::from_utf8(bytes_b).unwrap(),
    );
    assert_eq!(report_a, reference_report(&spec_a));
    assert_eq!(report_b, reference_report(&spec_b));
    assert_ne!(report_a, report_b);

    server.shutdown();
    for w in workers {
        w.join().unwrap().expect("worker exits cleanly");
    }
}

/// A hand-driven worker connection for failure injection.
struct ManualWorker {
    stream: TcpStream,
}

impl ManualWorker {
    fn connect(addr: &str) -> Self {
        let mut stream = TcpStream::connect(addr).expect("connect");
        proto::write_json(&mut stream, &proto::msg("worker").build()).unwrap();
        let hello = proto::read_json(&mut stream).unwrap();
        assert_eq!(proto::msg_type(&hello), "ok");
        ManualWorker { stream }
    }

    /// Polls and returns the `work` message (reading past any warm blob).
    fn take_work(&mut self) -> Json {
        proto::write_json(&mut self.stream, &proto::msg("poll").build()).unwrap();
        let work = proto::read_json(&mut self.stream).unwrap();
        assert_eq!(proto::msg_type(&work), "work", "{work:?}");
        if matches!(work.get("warm"), Some(Json::Bool(true))) {
            proto::read_blob(&mut self.stream).unwrap();
        }
        work
    }

    fn send_result_blob(&mut self, work: &Json, blob: &[u8]) {
        let reply = proto::msg("result")
            .field("campaign", work.get("campaign").unwrap().clone())
            .field("point", work.get("point").unwrap().clone())
            .build();
        proto::write_json(&mut self.stream, &reply).unwrap();
        proto::write_blob(&mut self.stream, blob).unwrap();
    }

    fn send_reject(&mut self, work: &Json, reason: &str) {
        let reply = proto::msg("reject")
            .field("campaign", work.get("campaign").unwrap().clone())
            .field("point", work.get("point").unwrap().clone())
            .field("reason", Json::str(reason))
            .build();
        proto::write_json(&mut self.stream, &reply).unwrap();
    }
}

#[test]
fn killed_worker_shard_is_reassigned() {
    let (server, addr) = start_server("kill", None);
    let spec = small_spec("kill", 17);
    let id = submit_id(&addr, &spec);

    // A worker takes a point, then its connection dies mid-compute.
    let mut doomed = ManualWorker::connect(&addr);
    let work = doomed.take_work();
    let taken = work.get("point").and_then(Json::as_u64).expect("point");
    drop(doomed);

    // A healthy worker joins afterwards and must recompute the lost
    // shard too — the report stays byte-identical.
    let worker = spawn_worker(&addr);
    let (done, lines) = watch_done(&addr, id);
    assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));
    assert!(
        lines
            .iter()
            .any(|l| l.get("point").and_then(Json::as_u64) == Some(taken)),
        "reassigned point {taken} never completed"
    );
    let (_, bytes) = client::fetch_report(&addr, id).expect("report");
    assert_eq!(String::from_utf8(bytes).unwrap(), reference_report(&spec));

    server.shutdown();
    worker.join().unwrap().expect("worker exits cleanly");
}

#[test]
fn damaged_xpsn_containers_bounce_cleanly_at_the_boundary() {
    // Worker side: a truncated or bit-flipped warm checkpoint is a
    // one-line rejection, never a panic.
    let spec = CampaignSpec::from_json(
        &Json::parse(
            r#"{"faults":["flit-corruption"],"cycles":300,"rates":[0.02],"warm_start":200}"#,
        )
        .unwrap(),
    )
    .unwrap();
    let warm = warm_checkpoint(&campaign_spec(), &spec.config(), 200)
        .expect("warm-up")
        .to_bytes();
    let assignment = |warm: Option<Vec<u8>>, point: u64| Assignment {
        campaign: 1,
        point,
        spec: spec.clone(),
        warm,
    };
    let truncated = warm[..warm.len() - 7].to_vec();
    let err = execute(&assignment(Some(truncated), 1)).unwrap_err();
    assert!(err.contains("damaged warm checkpoint"), "{err}");
    assert!(!err.contains('\n'), "{err}");
    let mut flipped = warm.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x10;
    let err = execute(&assignment(Some(flipped), 1)).unwrap_err();
    assert!(err.contains("damaged warm checkpoint"), "{err}");
    let err = execute(&assignment(None, 99)).unwrap_err();
    assert!(err.contains("out of range"), "{err}");

    // Server side: a reject and a corrupt result container both
    // reschedule the point, and the campaign still merges correctly.
    let (server, addr) = start_server("bounce", None);
    let spec_json = small_spec("bounce", 41);
    let id = submit_id(&addr, &spec_json);
    let mut saboteur = ManualWorker::connect(&addr);
    let work = saboteur.take_work();
    saboteur.send_reject(&work, "damaged warm checkpoint: integrity mismatch");
    let work = saboteur.take_work();
    saboteur.send_result_blob(&work, b"XPSNnot really a container");
    drop(saboteur);

    let worker = spawn_worker(&addr);
    let (done, _) = watch_done(&addr, id);
    assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));
    let (_, bytes) = client::fetch_report(&addr, id).expect("report");
    assert_eq!(
        String::from_utf8(bytes).unwrap(),
        reference_report(&spec_json)
    );

    server.shutdown();
    worker.join().unwrap().expect("worker exits cleanly");
}

#[test]
fn pause_resume_and_cancel_steer_scheduling() {
    let (server, addr) = start_server("steer", None);
    let spec = small_spec("steer", 53);
    let id = submit_id(&addr, &spec);

    // Paused campaigns hand out no work, so a worker joining now idles.
    let reply = client::request(
        &addr,
        &proto::msg("pause").field("id", Json::UInt(id)).build(),
    )
    .expect("pause");
    assert_eq!(reply.get("state").and_then(Json::as_str), Some("paused"));
    // A paused campaign is still active: an identical concurrent
    // submission is refused rather than double-journaled.
    let err = client::submit(&addr, &spec).unwrap_err();
    assert!(err.contains("already active"), "{err}");
    let worker = spawn_worker(&addr);
    std::thread::sleep(std::time::Duration::from_millis(100));
    let status = client::request(&addr, &proto::msg("status").build()).expect("status");
    let row = &status.get("campaigns").and_then(Json::as_array).unwrap()[0];
    assert_eq!(row.get("state").and_then(Json::as_str), Some("paused"));
    assert_eq!(row.get("completed").and_then(Json::as_u64), Some(0));

    let reply = client::request(
        &addr,
        &proto::msg("resume").field("id", Json::UInt(id)).build(),
    )
    .expect("resume");
    assert_eq!(reply.get("state").and_then(Json::as_str), Some("running"));
    let (done, _) = watch_done(&addr, id);
    assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));

    // Cancel a second campaign; its report is refused with one line.
    let id2 = submit_id(&addr, &small_spec("steer-2", 59));
    let reply = client::request(
        &addr,
        &proto::msg("cancel").field("id", Json::UInt(id2)).build(),
    )
    .expect("cancel");
    assert_eq!(reply.get("state").and_then(Json::as_str), Some("canceled"));
    let (done2, _) = watch_done(&addr, id2);
    assert_eq!(done2.get("state").and_then(Json::as_str), Some("canceled"));
    let err = client::fetch_report(&addr, id2).unwrap_err();
    assert!(err.contains("canceled"), "{err}");
    assert!(!err.contains('\n'), "{err}");

    // Terminal campaigns refuse further transitions.
    let err = client::request(
        &addr,
        &proto::msg("pause").field("id", Json::UInt(id)).build(),
    )
    .unwrap_err();
    assert!(err.contains("cannot pause"), "{err}");

    server.shutdown();
    worker.join().unwrap().expect("worker exits cleanly");
}

#[test]
fn resubmit_resumes_from_journal_with_one_ledger_record() {
    let dir = temp_dir("ledger");
    let ledger_path = dir.join("ledger.ndjson");
    let ledger_str = ledger_path.to_str().unwrap().to_string();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let mut cfg = ServerConfig::new(dir.join("state"));
    cfg.ledger = Some(ledger_str.clone());
    let server = Server::start(listener, cfg).expect("server starts");
    let addr = server.addr().to_string();
    let worker = spawn_worker(&addr);

    let spec = small_spec("ledgered", 67);
    let id = submit_id(&addr, &spec);
    let (done, _) = watch_done(&addr, id);
    assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));
    let (_, first) = client::fetch_report(&addr, id).expect("report");

    // Resubmitting the same spec resumes fully from the journal (no
    // recompute) and the marker guard keeps the ledger at one record.
    let reply = client::submit(&addr, &spec).expect("resubmit");
    let id2 = reply.get("id").and_then(Json::as_u64).unwrap();
    let grid = reply.get("grid").and_then(Json::as_u64).unwrap();
    assert_ne!(id2, id);
    assert_eq!(reply.get("resumed").and_then(Json::as_u64), Some(grid));
    let (done2, lines2) = watch_done(&addr, id2);
    assert_eq!(done2.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(
        lines2.len() as u64,
        grid,
        "full journal replays to watchers"
    );
    let (_, second) = client::fetch_report(&addr, id2).expect("report");
    assert_eq!(first, second, "journal resume is byte-identical");

    let entries = xpipes_bench::ledger::read_ledger(&ledger_str).expect("ledger validates");
    assert_eq!(entries.len(), 1, "exactly one record despite two submits");
    assert_eq!(entries[0].workload(), "fault-campaign");

    server.shutdown();
    worker.join().unwrap().expect("worker exits cleanly");
}

#[test]
fn binaries_shard_kill_and_merge_byte_identically() {
    let dir = temp_dir("bins");
    let port_file = dir.join("xpipesd.port");
    let spec_path = dir.join("campaign.json");
    // Big enough that the kill below lands mid-campaign.
    let spec =
        Json::parse(r#"{"name":"bins","faults":"all","cycles":6000,"seed":7,"rates":[0.02,0.05]}"#)
            .unwrap();
    std::fs::write(&spec_path, spec.render_compact()).unwrap();

    let mut daemon = std::process::Command::new(env!("CARGO_BIN_EXE_xpipesd"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().unwrap(),
            "--state-dir",
            dir.join("state").to_str().unwrap(),
        ])
        .spawn()
        .expect("spawn xpipesd");
    let addr = {
        let mut tries = 0;
        loop {
            match std::fs::read_to_string(&port_file) {
                Ok(text) if text.trim().contains(':') => break text.trim().to_string(),
                _ => {
                    tries += 1;
                    assert!(tries < 100, "xpipesd never wrote its port file");
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
            }
        }
    };

    let spawn_worker_proc = || {
        std::process::Command::new(env!("CARGO_BIN_EXE_xpipesd"))
            .args(["--worker", "--connect", &addr])
            .spawn()
            .expect("spawn worker")
    };
    let mut victim = spawn_worker_proc();
    let mut survivor = spawn_worker_proc();

    let adm = |args: &[&str]| {
        std::process::Command::new(env!("CARGO_BIN_EXE_xpipesadm"))
            .args(["--connect", &addr])
            .args(args)
            .output()
            .expect("run xpipesadm")
    };
    let submit = adm(&["submit", spec_path.to_str().unwrap()]);
    assert!(
        submit.status.success(),
        "submit failed: {}",
        String::from_utf8_lossy(&submit.stderr)
    );

    // Kill one worker mid-campaign; its shard must be reassigned.
    std::thread::sleep(std::time::Duration::from_millis(400));
    victim.kill().expect("kill worker");
    let _ = victim.wait();

    let watch = adm(&["watch", "1"]);
    assert!(
        watch.status.success(),
        "watch failed: {}",
        String::from_utf8_lossy(&watch.stderr)
    );
    let report_path = dir.join("service-report.json");
    let report = adm(&["report", "1", "--out", report_path.to_str().unwrap()]);
    assert!(
        report.status.success(),
        "report failed: {}",
        String::from_utf8_lossy(&report.stderr)
    );
    let served = std::fs::read_to_string(&report_path).unwrap();
    assert_eq!(served, reference_report(&spec), "byte-identity across kill");

    let shutdown = adm(&["shutdown"]);
    assert!(shutdown.status.success());
    let _ = daemon.wait();
    let _ = survivor.wait();
}
