//! The `xpipesd` campaign server.
//!
//! One listener thread accepts TCP connections; each connection gets a
//! handler thread. A connection is either a **worker** (it announces
//! itself with a `worker` message, then polls for grid points) or an
//! **operator** (it issues `submit`/`status`/`watch`/`pause`/`resume`/
//! `cancel`/`report`/`shutdown` commands — the `xpipesadm` verbs).
//!
//! # Shard lifecycle
//!
//! A submitted campaign is normalized to a [`CampaignSpec`], its grid
//! points become the pending queue, and workers pull one point at a
//! time: the unit of distribution is `(spec, point index)` plus — for
//! warm-started campaigns — the shared `XPSN` warm checkpoint blob.
//! Every completed point comes back as an `XPSN` `CompletedPoint`
//! container, is integrity-checked, journaled to the campaign's state
//! directory (the exact `faultcampaign --resume` format), and folded
//! into the report once the grid is complete. Because every point is a
//! pure function of (seed, index), the merged report is byte-identical
//! to the one-shot run no matter how the grid was sharded, reassigned,
//! or resumed.
//!
//! # Failure and reassignment
//!
//! A worker that disconnects mid-point (killed, crashed, unplugged)
//! releases its in-flight points back to the front of the pending
//! queue; a worker that rejects a point (bad warm blob, decode error)
//! or returns a corrupt result container does the same. Each bounce
//! burns one of the point's attempts; a point that keeps bouncing
//! fails the campaign instead of looping forever.
//!
//! # Multi-tenant scheduling
//!
//! One worker pool serves every campaign. Work is handed out fair
//! round-robin: each assignment starts scanning from the campaign
//! after the one that was served last, so two concurrent campaigns
//! interleave their grids instead of running strictly in submission
//! order. Paused campaigns are skipped (their in-flight points still
//! complete); canceled campaigns drop their queue.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use xpipes_bench::ledger;
use xpipes_bench::progress::{open_sink, SinkMode};
use xpipes_sim::Json;
use xpipes_traffic::faultcampaign::{
    assemble_report, campaign_spec, progress_line, warm_checkpoint, CampaignConfig, CompletedPoint,
    WarmStart,
};

use crate::proto::{self, ProtoError};
use crate::spec::CampaignSpec;

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Root of the per-campaign journal directories.
    pub state_dir: PathBuf,
    /// Run ledger completed campaigns append their summed record to.
    pub ledger: Option<String>,
    /// How many times one grid point may bounce (worker loss, reject,
    /// corrupt result) before the campaign is declared failed.
    pub max_point_attempts: u32,
}

impl ServerConfig {
    /// Defaults: no ledger, five attempts per point.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        ServerConfig {
            state_dir: state_dir.into(),
            ledger: None,
            max_point_attempts: 5,
        }
    }
}

/// Campaign lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Running,
    Paused,
    Done,
    Canceled,
    Failed,
}

impl Phase {
    fn name(self) -> &'static str {
        match self {
            Phase::Running => "running",
            Phase::Paused => "paused",
            Phase::Done => "done",
            Phase::Canceled => "canceled",
            Phase::Failed => "failed",
        }
    }

    fn terminal(self) -> bool {
        matches!(self, Phase::Done | Phase::Canceled | Phase::Failed)
    }
}

struct Campaign {
    id: u64,
    spec: CampaignSpec,
    /// Cached canonical wire form, relayed verbatim to workers so the
    /// grid they compute is bit-identical to the one submitted.
    spec_wire: Json,
    fingerprint: u64,
    grid: u64,
    cfg: CampaignConfig,
    dir: PathBuf,
    /// Shared warm checkpoint blob shipped with every assignment.
    warm: Option<Arc<Vec<u8>>>,
    pending: VecDeque<u64>,
    /// point -> connection currently computing it.
    in_flight: HashMap<u64, u64>,
    attempts: HashMap<u64, u32>,
    completed: BTreeMap<u64, CompletedPoint>,
    /// Progress lines in ascending grid order; `watch` streams go
    /// through here, so every watcher sees the same deterministic
    /// NDJSON regardless of completion order.
    log: Vec<Json>,
    next_emit: u64,
    phase: Phase,
    error: Option<String>,
    pass: bool,
    /// Exact bytes of the merged report (the byte-identity artifact).
    report: Option<Arc<Vec<u8>>>,
    started: Instant,
}

struct State {
    campaigns: Vec<Campaign>,
    next_id: u64,
    /// Round-robin cursor: index of the campaign to scan first.
    rr: usize,
    workers: usize,
    shutdown: bool,
}

struct Shared {
    cfg: ServerConfig,
    state: Mutex<State>,
    /// Rung on every state change; workers and watchers wait on it.
    bell: Condvar,
    addr: SocketAddr,
}

/// One grid point handed to a worker.
struct Assignment {
    campaign: u64,
    point: u64,
    spec_wire: Json,
    warm: Option<Arc<Vec<u8>>>,
}

/// A running `xpipesd` server.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts serving on `listener`; returns once the accept thread is
    /// up. Journal directories live under the config's `state_dir`.
    ///
    /// # Errors
    ///
    /// Propagates state-directory creation and listener failures.
    pub fn start(listener: TcpListener, cfg: ServerConfig) -> io::Result<Server> {
        std::fs::create_dir_all(&cfg.state_dir)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(State {
                campaigns: Vec::new(),
                next_id: 1,
                rr: 0,
                workers: 0,
                shutdown: false,
            }),
            bell: Condvar::new(),
            addr,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("xpipesd-accept".into())
            .spawn(move || {
                let mut next_conn = 0u64;
                while let Ok((stream, _)) = listener.accept() {
                    if accept_shared.state.lock().unwrap().shutdown {
                        break;
                    }
                    next_conn += 1;
                    let conn = next_conn;
                    let conn_shared = Arc::clone(&accept_shared);
                    let _ = std::thread::Builder::new()
                        .name(format!("xpipesd-conn-{conn}"))
                        .spawn(move || handle_conn(&conn_shared, stream, conn));
                }
            })?;
        Ok(Server {
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with port-0 listeners).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Stops accepting, wakes every blocked worker and watcher with the
    /// shutdown flag, and waits for the accept thread to exit.
    pub fn shutdown(mut self) {
        request_shutdown(&self.shared);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Blocks until a `shutdown` command arrives over the wire (the
    /// `xpipesd` main loop).
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

fn request_shutdown(shared: &Shared) {
    {
        let mut st = shared.state.lock().unwrap();
        st.shutdown = true;
    }
    shared.bell.notify_all();
    // The accept loop blocks in accept(); a throwaway connection makes
    // it observe the flag.
    let _ = TcpStream::connect(shared.addr);
}

fn handle_conn(shared: &Arc<Shared>, mut stream: TcpStream, conn: u64) {
    let mut registered = false;
    let _ = serve_conn(shared, &mut stream, conn, &mut registered);
    if registered {
        let mut st = shared.state.lock().unwrap();
        st.workers -= 1;
        release_worker_points(&mut st, conn, shared.cfg.max_point_attempts);
        drop(st);
        shared.bell.notify_all();
    }
}

fn serve_conn(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    conn: u64,
    registered: &mut bool,
) -> Result<(), ProtoError> {
    loop {
        let msg = match proto::read_json(stream) {
            Ok(msg) => msg,
            Err(ProtoError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        };
        match proto::msg_type(&msg) {
            "worker" => {
                if !*registered {
                    *registered = true;
                    shared.state.lock().unwrap().workers += 1;
                }
                proto::write_json(stream, &proto::msg("ok").build()).map_err(ProtoError::Io)?;
            }
            "poll" => {
                if !*registered {
                    reply_error(stream, "poll from an unregistered connection")?;
                    continue;
                }
                if !send_next_work(shared, stream, conn)? {
                    return Ok(());
                }
            }
            "result" => {
                let point = field_u64(&msg, "point")?;
                let campaign = field_u64(&msg, "campaign")?;
                let blob = proto::read_blob(stream)?;
                match CompletedPoint::from_bytes(&blob) {
                    Ok(cp) if cp.index == point => {
                        complete_point(shared, campaign, cp);
                    }
                    Ok(cp) => reschedule(
                        shared,
                        campaign,
                        point,
                        &format!(
                            "result container holds grid point {}, expected {point}",
                            cp.index
                        ),
                    ),
                    // A damaged container is indistinguishable from a
                    // worker bug: bounce the point like a reject.
                    Err(e) => reschedule(
                        shared,
                        campaign,
                        point,
                        &format!("corrupt result container: {e}"),
                    ),
                }
            }
            "reject" => {
                let point = field_u64(&msg, "point")?;
                let campaign = field_u64(&msg, "campaign")?;
                let reason = msg
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("worker rejected the point");
                reschedule(shared, campaign, point, reason);
            }
            "submit" => match handle_submit(shared, &msg) {
                Ok(reply) => proto::write_json(stream, &reply).map_err(ProtoError::Io)?,
                Err(e) => reply_error(stream, &e)?,
            },
            "status" => {
                let reply = status_reply(shared);
                proto::write_json(stream, &reply).map_err(ProtoError::Io)?;
            }
            "watch" => {
                let id = field_u64(&msg, "id")?;
                watch(shared, stream, id)?;
            }
            "report" => {
                let id = field_u64(&msg, "id")?;
                match fetch_report(shared, id) {
                    Ok((pass, bytes)) => {
                        let reply = proto::msg("ok").field("pass", Json::Bool(pass)).build();
                        proto::write_json(stream, &reply).map_err(ProtoError::Io)?;
                        proto::write_blob(stream, &bytes).map_err(ProtoError::Io)?;
                    }
                    Err(e) => reply_error(stream, &e)?,
                }
            }
            "pause" | "resume" | "cancel" => {
                let id = field_u64(&msg, "id")?;
                match transition(shared, id, proto::msg_type(&msg)) {
                    Ok(state) => {
                        let reply = proto::msg("ok").field("state", Json::str(state)).build();
                        proto::write_json(stream, &reply).map_err(ProtoError::Io)?;
                    }
                    Err(e) => reply_error(stream, &e)?,
                }
            }
            "shutdown" => {
                proto::write_json(stream, &proto::msg("ok").build()).map_err(ProtoError::Io)?;
                request_shutdown(shared);
                return Ok(());
            }
            other => reply_error(stream, &format!("unknown message type '{other}'"))?,
        }
    }
}

fn reply_error(stream: &mut TcpStream, message: &str) -> Result<(), ProtoError> {
    proto::write_json(stream, &proto::error_msg(message)).map_err(ProtoError::Io)
}

fn field_u64(msg: &Json, key: &str) -> Result<u64, ProtoError> {
    msg.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtoError::BadJson(format!("message carries no numeric '{key}'")))
}

/// Blocks until work, shutdown, or a lost connection; returns `false`
/// when the worker should wind down.
fn send_next_work(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    conn: u64,
) -> Result<bool, ProtoError> {
    let assignment = {
        let mut st = shared.state.lock().unwrap();
        loop {
            if st.shutdown {
                drop(st);
                proto::write_json(stream, &proto::msg("shutdown").build())
                    .map_err(ProtoError::Io)?;
                return Ok(false);
            }
            if let Some(a) = take_work(&mut st, conn) {
                break a;
            }
            st = shared.bell.wait(st).unwrap();
        }
    };
    let work = proto::msg("work")
        .field("campaign", Json::UInt(assignment.campaign))
        .field("point", Json::UInt(assignment.point))
        .field("spec", assignment.spec_wire)
        .field("warm", Json::Bool(assignment.warm.is_some()))
        .build();
    proto::write_json(stream, &work).map_err(ProtoError::Io)?;
    if let Some(warm) = &assignment.warm {
        proto::write_blob(stream, warm).map_err(ProtoError::Io)?;
    }
    Ok(true)
}

/// Fair round-robin: scan campaigns starting after the last one served;
/// the first running campaign with pending work wins.
fn take_work(st: &mut State, conn: u64) -> Option<Assignment> {
    let n = st.campaigns.len();
    for i in 0..n {
        let idx = (st.rr + i) % n;
        let c = &mut st.campaigns[idx];
        if c.phase != Phase::Running {
            continue;
        }
        if let Some(point) = c.pending.pop_front() {
            c.in_flight.insert(point, conn);
            st.rr = (idx + 1) % n;
            return Some(Assignment {
                campaign: c.id,
                point,
                spec_wire: c.spec_wire.clone(),
                warm: c.warm.clone(),
            });
        }
    }
    None
}

/// Puts every point the lost connection was computing back at the front
/// of its queue. The bounce burns an attempt so a point that keeps
/// killing workers eventually fails the campaign instead of cycling.
fn release_worker_points(st: &mut State, conn: u64, max_attempts: u32) {
    for idx in 0..st.campaigns.len() {
        let c = &mut st.campaigns[idx];
        if c.phase.terminal() {
            continue;
        }
        let lost: Vec<u64> = c
            .in_flight
            .iter()
            .filter(|&(_, &owner)| owner == conn)
            .map(|(&point, _)| point)
            .collect();
        for point in lost {
            bounce_point(c, point, "worker connection lost", max_attempts);
        }
    }
}

fn reschedule(shared: &Arc<Shared>, campaign: u64, point: u64, reason: &str) {
    let mut st = shared.state.lock().unwrap();
    if let Some(c) = st.campaigns.iter_mut().find(|c| c.id == campaign) {
        if !c.phase.terminal() {
            bounce_point(c, point, reason, shared.cfg.max_point_attempts);
        } else {
            c.in_flight.remove(&point);
        }
    }
    drop(st);
    shared.bell.notify_all();
}

fn bounce_point(c: &mut Campaign, point: u64, reason: &str, max_attempts: u32) {
    c.in_flight.remove(&point);
    if c.completed.contains_key(&point) || point >= c.grid {
        return;
    }
    let tries = c.attempts.entry(point).or_insert(0);
    *tries += 1;
    if *tries >= max_attempts {
        c.phase = Phase::Failed;
        c.error = Some(format!(
            "grid point {point} bounced {tries} times; last: {reason}"
        ));
        c.pending.clear();
        c.in_flight.clear();
    } else {
        c.pending.push_front(point);
    }
}

fn complete_point(shared: &Arc<Shared>, campaign: u64, cp: CompletedPoint) {
    let mut st = shared.state.lock().unwrap();
    if let Some(c) = st.campaigns.iter_mut().find(|c| c.id == campaign) {
        c.in_flight.remove(&cp.index);
        if !c.phase.terminal() && cp.index < c.grid && !c.completed.contains_key(&cp.index) {
            // Journal first: a server crash after this write resumes
            // with the point already done.
            let _ = std::fs::write(point_path(&c.dir, cp.index), cp.to_bytes());
            record_point(c, cp);
            if c.completed.len() as u64 == c.grid {
                finalize(&shared.cfg, c);
            }
        }
    }
    drop(st);
    shared.bell.notify_all();
}

/// Folds one completed point in and emits every progress line that is
/// now contiguous from the front of the grid — watchers see the same
/// ascending, deterministic NDJSON the one-shot `--progress` stream
/// produces, regardless of shard completion order.
fn record_point(c: &mut Campaign, cp: CompletedPoint) {
    c.completed.insert(cp.index, cp);
    while let Some(p) = c.completed.get(&c.next_emit) {
        c.log.push(progress_line(&c.spec.faults, &c.cfg, p));
        c.next_emit += 1;
    }
}

/// Assembles the byte-identity report, journals it, appends the ledger
/// record (exactly once per journal, marker-guarded), and marks the
/// campaign done.
fn finalize(cfg: &ServerConfig, c: &mut Campaign) {
    let points: Vec<CompletedPoint> = c.completed.values().cloned().collect();
    let report = assemble_report(&campaign_spec(), &c.spec.faults, &c.cfg, points);
    let bytes = report.to_json().into_bytes();
    if let Err(e) = std::fs::write(c.dir.join("report.json"), &bytes) {
        eprintln!("xpipesd: cannot journal report for campaign {}: {e}", c.id);
    }
    if let Some(path) = &cfg.ledger {
        if ledger::campaign_ledger_recorded(&c.dir, c.fingerprint) {
            eprintln!(
                "xpipesd: campaign {} already has its ledger record; skipping append",
                c.id
            );
        } else {
            match open_sink(Some(path.as_str()), "ledger", SinkMode::Append) {
                Ok(Some(mut sink)) => {
                    sink.emit(&ledger::campaign_record(
                        &report,
                        c.fingerprint,
                        c.started.elapsed().as_secs_f64(),
                        None,
                    ));
                    if let Err(e) = ledger::record_campaign_ledger_appended(&c.dir, c.fingerprint) {
                        eprintln!("xpipesd: cannot mark ledger append: {e}");
                    }
                }
                Ok(None) => {}
                Err(e) => eprintln!("xpipesd: {e}"),
            }
        }
    }
    c.pass = report.pass;
    c.report = Some(Arc::new(bytes));
    c.phase = Phase::Done;
}

fn point_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("point-{index}.bin"))
}

/// Journal metadata, in the exact `faultcampaign --resume` format, so
/// the two resume mechanisms share one on-disk contract.
fn meta_json(fingerprint: u64, grid: u64, warm_cycles: u64) -> String {
    Json::object()
        .field("campaign", Json::str("faultcampaign"))
        .field("fingerprint", Json::str(format!("{fingerprint:016x}")))
        .field("grid", Json::UInt(grid))
        .field("warm_cycles", Json::UInt(warm_cycles))
        .build()
        .render()
}

fn check_meta(text: &str, fingerprint: u64, grid: u64, warm_cycles: u64) -> Result<(), String> {
    let doc = Json::parse(text).map_err(|e| format!("malformed journal meta.json: {e}"))?;
    let got_fp = doc.get("fingerprint").and_then(Json::as_str).unwrap_or("");
    let got_grid = doc.get("grid").and_then(Json::as_u64).unwrap_or(0);
    let got_warm = doc.get("warm_cycles").and_then(Json::as_u64).unwrap_or(0);
    if got_fp != format!("{fingerprint:016x}") || got_grid != grid || got_warm != warm_cycles {
        return Err(format!(
            "journal directory was created by a different campaign configuration \
             (fingerprint {got_fp}, grid {got_grid}, warm {got_warm})"
        ));
    }
    Ok(())
}

/// Prepares a campaign's journal directory: meta pinning, the shared
/// warm checkpoint (loaded or computed), and every salvageable
/// journaled point. Damaged entries are discarded and recomputed.
fn prepare_journal(
    dir: &Path,
    spec: &CampaignSpec,
    cfg: &CampaignConfig,
    fingerprint: u64,
    grid: u64,
) -> Result<(Option<WarmStart>, BTreeMap<u64, CompletedPoint>), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create journal directory {}: {e}", dir.display()))?;
    let meta_path = dir.join("meta.json");
    match std::fs::read_to_string(&meta_path) {
        Ok(text) => check_meta(&text, fingerprint, grid, spec.warm_start)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            std::fs::write(&meta_path, meta_json(fingerprint, grid, spec.warm_start))
                .map_err(|e| format!("cannot write {}: {e}", meta_path.display()))?;
        }
        Err(e) => return Err(format!("cannot read {}: {e}", meta_path.display())),
    }
    let warm = if spec.warm_start == 0 {
        None
    } else {
        let path = dir.join("warm.bin");
        // A damaged or mismatched checkpoint is recomputed, not fatal:
        // the warm-up is a deterministic pure function of the spec.
        let journaled = std::fs::read(&path).ok().and_then(|bytes| {
            WarmStart::from_bytes(&bytes)
                .ok()
                .filter(|w| w.cycles == spec.warm_start)
        });
        match journaled {
            Some(warm) => Some(warm),
            None => {
                let warm = warm_checkpoint(&campaign_spec(), cfg, spec.warm_start)
                    .map_err(|e| format!("warm-up failed: {e}"))?;
                std::fs::write(&path, warm.to_bytes())
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                Some(warm)
            }
        }
    };
    let mut completed = BTreeMap::new();
    for index in 0..grid {
        if let Ok(bytes) = std::fs::read(point_path(dir, index)) {
            match CompletedPoint::from_bytes(&bytes) {
                Ok(point) if point.index == index => {
                    completed.insert(index, point);
                }
                _ => {
                    // Kill mid-write or a stray file: recompute.
                }
            }
        }
    }
    Ok((warm, completed))
}

fn handle_submit(shared: &Arc<Shared>, msg: &Json) -> Result<Json, String> {
    let spec_json = msg.get("spec").ok_or("submit carries no 'spec'")?;
    let spec = CampaignSpec::from_json(spec_json)?;
    let cfg = spec.config();
    let fingerprint = spec.fingerprint();
    let grid = spec.grid();
    // Keyed by fingerprint *and* warm-up: the fingerprint pins what the
    // results are a function of per measurement protocol, the warm-up
    // length selects the protocol.
    let dir = shared
        .cfg
        .state_dir
        .join(format!("c{fingerprint:016x}-w{}", spec.warm_start));
    {
        let st = shared.state.lock().unwrap();
        if st.shutdown {
            return Err("server is shutting down".into());
        }
        if let Some(active) = st
            .campaigns
            .iter()
            .find(|c| c.dir == dir && !c.phase.terminal())
        {
            return Err(format!(
                "an identical campaign is already active (id {})",
                active.id
            ));
        }
    }
    // Filesystem work (warm-up compute, journal load) happens outside
    // the lock; workers keep draining other campaigns meanwhile.
    let (warm, completed) = prepare_journal(&dir, &spec, &cfg, fingerprint, grid)?;
    let resumed = completed.len() as u64;
    let spec_wire = spec.to_json();

    let mut st = shared.state.lock().unwrap();
    if st.shutdown {
        return Err("server is shutting down".into());
    }
    if let Some(active) = st
        .campaigns
        .iter()
        .find(|c| c.dir == dir && !c.phase.terminal())
    {
        return Err(format!(
            "an identical campaign is already active (id {})",
            active.id
        ));
    }
    let id = st.next_id;
    st.next_id += 1;
    let mut campaign = Campaign {
        id,
        spec,
        spec_wire,
        fingerprint,
        grid,
        cfg,
        dir,
        warm: warm.map(|w| Arc::new(w.to_bytes())),
        pending: (0..grid).filter(|i| !completed.contains_key(i)).collect(),
        in_flight: HashMap::new(),
        attempts: HashMap::new(),
        completed: BTreeMap::new(),
        log: Vec::new(),
        next_emit: 0,
        phase: Phase::Running,
        error: None,
        pass: false,
        report: None,
        started: Instant::now(),
    };
    // Journal-loaded points emit their progress lines too, so watchers
    // of a resumed campaign see the full deterministic journal.
    for (_, point) in completed {
        record_point(&mut campaign, point);
    }
    if campaign.completed.len() as u64 == grid {
        finalize(&shared.cfg, &mut campaign);
    }
    st.campaigns.push(campaign);
    drop(st);
    shared.bell.notify_all();
    Ok(proto::msg("ok")
        .field("id", Json::UInt(id))
        .field("grid", Json::UInt(grid))
        .field("fingerprint", Json::str(format!("{fingerprint:016x}")))
        .field("resumed", Json::UInt(resumed))
        .build())
}

fn status_reply(shared: &Arc<Shared>) -> Json {
    let st = shared.state.lock().unwrap();
    let campaigns = st
        .campaigns
        .iter()
        .map(|c| {
            let mut b = Json::object()
                .field("id", Json::UInt(c.id))
                .field("name", Json::str(&c.spec.name))
                .field("state", Json::str(c.phase.name()))
                .field("grid", Json::UInt(c.grid))
                .field("completed", Json::UInt(c.completed.len() as u64))
                .field("pending", Json::UInt(c.pending.len() as u64))
                .field("in_flight", Json::UInt(c.in_flight.len() as u64))
                .field("fingerprint", Json::str(format!("{:016x}", c.fingerprint)));
            if c.phase == Phase::Done {
                b = b.field("pass", Json::Bool(c.pass));
            }
            if let Some(error) = &c.error {
                b = b.field("error", Json::str(error));
            }
            b.build()
        })
        .collect();
    proto::msg("ok")
        .field("workers", Json::UInt(st.workers as u64))
        .field("campaigns", Json::Array(campaigns))
        .build()
}

fn fetch_report(shared: &Arc<Shared>, id: u64) -> Result<(bool, Arc<Vec<u8>>), String> {
    let st = shared.state.lock().unwrap();
    let c = st
        .campaigns
        .iter()
        .find(|c| c.id == id)
        .ok_or_else(|| format!("no campaign with id {id}"))?;
    match (&c.report, c.phase) {
        (Some(report), _) => Ok((c.pass, Arc::clone(report))),
        (None, Phase::Canceled) => Err(format!("campaign {id} was canceled")),
        (None, Phase::Failed) => Err(format!(
            "campaign {id} failed: {}",
            c.error.as_deref().unwrap_or("unknown cause")
        )),
        (None, _) => Err(format!(
            "campaign {id} is still {} ({}/{} points complete)",
            c.phase.name(),
            c.completed.len(),
            c.grid
        )),
    }
}

fn transition(shared: &Arc<Shared>, id: u64, verb: &str) -> Result<&'static str, String> {
    let mut st = shared.state.lock().unwrap();
    let c = st
        .campaigns
        .iter_mut()
        .find(|c| c.id == id)
        .ok_or_else(|| format!("no campaign with id {id}"))?;
    let state = match (verb, c.phase) {
        ("pause", Phase::Running) => {
            c.phase = Phase::Paused;
            "paused"
        }
        ("resume", Phase::Paused) => {
            c.phase = Phase::Running;
            "running"
        }
        ("cancel", Phase::Running | Phase::Paused) => {
            c.phase = Phase::Canceled;
            c.pending.clear();
            c.in_flight.clear();
            "canceled"
        }
        (_, phase) => {
            return Err(format!(
                "cannot {verb} campaign {id}: it is {}",
                phase.name()
            ))
        }
    };
    drop(st);
    shared.bell.notify_all();
    Ok(state)
}

/// Streams a campaign's progress lines, then the terminal `done`
/// message. Replays the whole deterministic log from the start, so a
/// late watcher sees the same NDJSON as one attached at submit.
fn watch(shared: &Arc<Shared>, stream: &mut TcpStream, id: u64) -> Result<(), ProtoError> {
    {
        let st = shared.state.lock().unwrap();
        if !st.campaigns.iter().any(|c| c.id == id) {
            drop(st);
            return reply_error(stream, &format!("no campaign with id {id}"));
        }
    }
    let mut sent = 0usize;
    loop {
        let (lines, done) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    drop(st);
                    return reply_error(stream, "server is shutting down");
                }
                let c = st
                    .campaigns
                    .iter()
                    .find(|c| c.id == id)
                    .expect("watched campaigns are never removed");
                if c.log.len() > sent || c.phase.terminal() {
                    let lines: Vec<Json> = c.log[sent..].to_vec();
                    let done = c.phase.terminal().then(|| {
                        let mut b = proto::msg("done")
                            .field("id", Json::UInt(c.id))
                            .field("state", Json::str(c.phase.name()))
                            .field("pass", Json::Bool(c.pass));
                        if let Some(error) = &c.error {
                            b = b.field("error", Json::str(error));
                        }
                        b.build()
                    });
                    break (lines, done);
                }
                st = shared.bell.wait(st).unwrap();
            }
        };
        sent += lines.len();
        for line in lines {
            let msg = proto::msg("progress").field("line", line).build();
            proto::write_json(stream, &msg).map_err(ProtoError::Io)?;
        }
        if let Some(done) = done {
            proto::write_json(stream, &done).map_err(ProtoError::Io)?;
            return Ok(());
        }
    }
}
