//! Operator CLI for the campaign service (the `opteadm` to `xpipesd`'s
//! engine).
//!
//! Every command opens one connection to `--connect` (default read
//! from `xpipesd.port`, the daemon's `--port-file`):
//!
//! * `submit SPEC.json` — validate and submit a campaign spec (`-` for
//!   stdin); prints the assigned id, grid size, fingerprint, and how
//!   many points a prior journal already covered;
//! * `status` — worker count and one row per campaign;
//! * `watch ID` — stream the campaign's deterministic NDJSON progress
//!   lines to stdout until it finishes (exit 0 pass, 1 fail, 2
//!   canceled/failed);
//! * `report ID [--out PATH]` — fetch the merged report, byte-identical
//!   to the one-shot `faultcampaign` run (exit 1 on a failing verdict);
//! * `pause ID` / `resume ID` / `cancel ID` — scheduling control;
//! * `shutdown` — stop the daemon (local workers drain and exit).
//!
//! Errors follow the one-line `error: ...` + exit-2 contract.
//!
//! ```text
//! xpipesadm --connect 127.0.0.1:9717 submit campaign.json
//! xpipesadm --connect 127.0.0.1:9717 watch 1
//! xpipesadm --connect 127.0.0.1:9717 report 1 --out report.json
//! ```

use std::io::Read;
use std::process::ExitCode;

use xpipes_service::client;
use xpipes_service::proto;
use xpipes_sim::Json;

enum Command {
    Submit(String),
    Status,
    Watch(u64),
    Report(u64, Option<String>),
    Pause(u64),
    Resume(u64),
    Cancel(u64),
    Shutdown,
}

struct Args {
    connect: Option<String>,
    command: Command,
}

fn value(it: &mut impl Iterator<Item = String>, name: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{name} requires a value"))
}

fn id_value(it: &mut impl Iterator<Item = String>, name: &str) -> Result<u64, String> {
    value(it, name)?
        .parse()
        .map_err(|e| format!("bad {name} ID: {e}"))
}

fn parse_args() -> Result<Args, String> {
    let mut connect = None;
    let mut out = None;
    let mut command = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => connect = Some(value(&mut it, "--connect")?),
            "--out" => out = Some(value(&mut it, "--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: xpipesadm [--connect ADDR] COMMAND\n\
                     commands:\n  \
                     submit SPEC.json     submit a campaign ('-' reads stdin)\n  \
                     status               worker count + one row per campaign\n  \
                     watch ID             stream progress NDJSON until done\n  \
                     report ID [--out P]  fetch the merged report\n  \
                     pause ID | resume ID | cancel ID\n  \
                     shutdown             stop the daemon"
                );
                std::process::exit(0);
            }
            "submit" if command.is_none() => {
                command = Some(Command::Submit(value(&mut it, "submit")?));
            }
            "status" if command.is_none() => command = Some(Command::Status),
            "watch" if command.is_none() => {
                command = Some(Command::Watch(id_value(&mut it, "watch")?));
            }
            "report" if command.is_none() => {
                command = Some(Command::Report(id_value(&mut it, "report")?, None));
            }
            "pause" if command.is_none() => {
                command = Some(Command::Pause(id_value(&mut it, "pause")?));
            }
            "resume" if command.is_none() => {
                command = Some(Command::Resume(id_value(&mut it, "resume")?));
            }
            "cancel" if command.is_none() => {
                command = Some(Command::Cancel(id_value(&mut it, "cancel")?));
            }
            "shutdown" if command.is_none() => command = Some(Command::Shutdown),
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    let mut command = command.ok_or("no command given (try --help)")?;
    if let Command::Report(_, slot) = &mut command {
        *slot = out;
    } else if out.is_some() {
        return Err("--out only applies to 'report'".into());
    }
    Ok(Args { connect, command })
}

/// The daemon address: `--connect`, or the conventional port file the
/// daemon writes.
fn server_addr(args: &Args) -> Result<String, String> {
    if let Some(addr) = &args.connect {
        return Ok(addr.clone());
    }
    match std::fs::read_to_string("xpipesd.port") {
        Ok(text) => Ok(text.trim().to_string()),
        Err(_) => Err("no --connect ADDR and no xpipesd.port file in this directory".into()),
    }
}

fn read_spec(path: &str) -> Result<Json, String> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("cannot read spec from stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read spec {path}: {e}"))?
    };
    Json::parse(&text).map_err(|e| format!("malformed spec {path}: {e}"))
}

fn field(json: &Json, key: &str) -> String {
    json.get(key).map_or_else(
        || "?".to_string(),
        |v| v.as_str().map_or_else(|| v.render_compact(), String::from),
    )
}

fn run(args: &Args) -> Result<ExitCode, String> {
    let addr = server_addr(args)?;
    match &args.command {
        Command::Submit(path) => {
            let spec = read_spec(path)?;
            let reply = client::submit(&addr, &spec)?;
            println!(
                "submitted campaign {} (grid {}, fingerprint {}, {} points from journal)",
                field(&reply, "id"),
                field(&reply, "grid"),
                field(&reply, "fingerprint"),
                field(&reply, "resumed"),
            );
        }
        Command::Status => {
            let reply = client::request(&addr, &proto::msg("status").build())?;
            println!("workers: {}", field(&reply, "workers"));
            let campaigns = reply
                .get("campaigns")
                .and_then(Json::as_array)
                .unwrap_or(&[]);
            if campaigns.is_empty() {
                println!("no campaigns");
            }
            for c in campaigns {
                let mut row = format!(
                    "campaign {} [{}] {}: {}/{} complete, {} pending, {} in flight",
                    field(c, "id"),
                    field(c, "name"),
                    field(c, "state"),
                    field(c, "completed"),
                    field(c, "grid"),
                    field(c, "pending"),
                    field(c, "in_flight"),
                );
                if let Some(Json::Bool(pass)) = c.get("pass") {
                    row.push_str(if *pass { ", pass" } else { ", FAIL" });
                }
                if let Some(error) = c.get("error").and_then(Json::as_str) {
                    row.push_str(&format!(" ({error})"));
                }
                println!("{row}");
            }
        }
        Command::Watch(id) => {
            let done = client::watch(&addr, *id, &mut |line| {
                println!("{}", line.render_compact());
            })?;
            let state = field(&done, "state");
            let pass = matches!(done.get("pass"), Some(Json::Bool(true)));
            eprintln!("campaign {id} {state}");
            return Ok(match (state.as_str(), pass) {
                ("done", true) => ExitCode::SUCCESS,
                ("done", false) => ExitCode::FAILURE,
                _ => ExitCode::from(2),
            });
        }
        Command::Report(id, out) => {
            let (pass, bytes) = client::fetch_report(&addr, *id)?;
            if let Some(path) = out {
                std::fs::write(path, &bytes).map_err(|e| format!("cannot write {path}: {e}"))?;
            } else {
                let text = String::from_utf8_lossy(&bytes);
                print!("{text}");
            }
            if !pass {
                eprintln!("campaign {id} FAILED");
                return Ok(ExitCode::FAILURE);
            }
        }
        Command::Pause(id) | Command::Resume(id) | Command::Cancel(id) => {
            let verb = match &args.command {
                Command::Pause(_) => "pause",
                Command::Resume(_) => "resume",
                _ => "cancel",
            };
            let msg = proto::msg(verb).field("id", Json::UInt(*id)).build();
            let reply = client::request(&addr, &msg)?;
            println!("campaign {id} {}", field(&reply, "state"));
        }
        Command::Shutdown => {
            client::request(&addr, &proto::msg("shutdown").build())?;
            println!("xpipesd at {addr} shutting down");
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
