//! The campaign service daemon.
//!
//! Serves the framed TCP protocol on `--listen` (default loopback,
//! ephemeral port; the bound address goes to stderr and `--port-file`
//! so scripts can find an ephemeral port). `--workers N` spawns N local
//! worker processes (this same binary with `--worker`) against the
//! bound address; remote machines join the same pool by running
//! `xpipesd --worker --connect HOST:PORT`.
//!
//! Campaign journals live under `--state-dir`, one directory per
//! campaign configuration, in the exact `faultcampaign --resume`
//! format: kill the daemon mid-campaign, restart it, resubmit the same
//! spec, and the campaign resumes from the journaled points. With
//! `--ledger PATH` every completed campaign appends its summed record
//! (exactly once per journal) for `xpipesobs`.
//!
//! Errors follow the bench binaries' one-line `error: ...` + exit-2
//! contract.
//!
//! ```text
//! xpipesd --workers 2 --state-dir state/ --ledger ledger.ndjson
//! xpipesd --listen 0.0.0.0:9717 --port-file xpipesd.port
//! xpipesd --worker --connect 127.0.0.1:9717
//! ```

use std::net::TcpListener;
use std::process::ExitCode;

use xpipes_service::worker::run_worker;
use xpipes_service::{Server, ServerConfig};

struct Args {
    listen: String,
    port_file: Option<String>,
    workers: usize,
    state_dir: String,
    ledger: Option<String>,
    max_attempts: u32,
    worker: bool,
    connect: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:0".to_string(),
        port_file: None,
        workers: 0,
        state_dir: "xpipesd-state".to_string(),
        ledger: None,
        max_attempts: 5,
        worker: false,
        connect: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--port-file" => args.port_file = Some(value("--port-file")?),
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--state-dir" => args.state_dir = value("--state-dir")?,
            "--ledger" => args.ledger = Some(value("--ledger")?),
            "--max-attempts" => {
                args.max_attempts = value("--max-attempts")?
                    .parse()
                    .map_err(|e| format!("bad --max-attempts: {e}"))?;
                if args.max_attempts == 0 {
                    return Err("--max-attempts must be at least 1".into());
                }
            }
            "--worker" => args.worker = true,
            "--connect" => args.connect = Some(value("--connect")?),
            "--help" | "-h" => {
                println!(
                    "usage: xpipesd [--listen ADDR] [--port-file PATH] [--workers N]\n  \
                     [--state-dir DIR] [--ledger PATH] [--max-attempts N]\n\
                     usage: xpipesd --worker --connect ADDR"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.worker && args.connect.is_none() {
        return Err("--worker requires --connect ADDR".into());
    }
    if !args.worker && args.connect.is_some() {
        return Err("--connect requires --worker".into());
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), String> {
    if args.worker {
        let addr = args.connect.as_deref().expect("checked in parse_args");
        return run_worker(addr);
    }
    let listener = TcpListener::bind(&args.listen)
        .map_err(|e| format!("cannot listen on {}: {e}", args.listen))?;
    let mut cfg = ServerConfig::new(&args.state_dir);
    cfg.ledger = args.ledger.clone();
    cfg.max_point_attempts = args.max_attempts;
    let server = Server::start(listener, cfg).map_err(|e| format!("cannot start server: {e}"))?;
    let addr = server.addr();
    eprintln!("xpipesd: listening on {addr}");
    if let Some(path) = &args.port_file {
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let mut children = Vec::new();
    for _ in 0..args.workers {
        let child = std::process::Command::new(&exe)
            .arg("--worker")
            .arg("--connect")
            .arg(addr.to_string())
            .spawn()
            .map_err(|e| format!("cannot spawn worker: {e}"))?;
        children.push(child);
    }
    server.wait();
    // Workers see the shutdown message on their next poll and exit on
    // their own; reap them so the daemon leaves nothing behind.
    for mut child in children {
        let _ = child.wait();
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
