//! Operator-side client helpers: one connection per command, shared by
//! `xpipesadm` and the integration tests.

use std::net::TcpStream;

use xpipes_sim::Json;

use crate::proto::{self, ProtoError};
use crate::spec::CampaignSpec;

fn connect(addr: &str) -> Result<TcpStream, String> {
    TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))
}

/// Unwraps a reply: `error` messages become `Err` with the server's
/// one-line reason.
fn check_reply(reply: Json) -> Result<Json, String> {
    if proto::msg_type(&reply) == "error" {
        Err(reply
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("server error")
            .to_string())
    } else {
        Ok(reply)
    }
}

/// Sends one request and reads one JSON reply.
///
/// # Errors
///
/// Connection/protocol failures and server `error` replies, one line
/// each.
pub fn request(addr: &str, msg: &Json) -> Result<Json, String> {
    let mut stream = connect(addr)?;
    proto::write_json(&mut stream, msg).map_err(|e| e.to_string())?;
    let reply = proto::read_json(&mut stream).map_err(|e| e.to_string())?;
    check_reply(reply)
}

/// Submits a campaign spec; returns the server's `ok` reply (`id`,
/// `grid`, `fingerprint`, `resumed`).
///
/// # Errors
///
/// Spec validation errors (client-side, before any connection) plus
/// everything [`request`] reports.
pub fn submit(addr: &str, spec_json: &Json) -> Result<Json, String> {
    // Validate and normalize locally so the operator gets the parse
    // error directly, and the server receives the canonical wire form
    // (exact rate bit patterns included).
    let spec = CampaignSpec::from_json(spec_json)?;
    request(
        addr,
        &proto::msg("submit").field("spec", spec.to_json()).build(),
    )
}

/// Fetches a finished campaign's merged report: `(pass, exact report
/// bytes)` — the bytes the byte-identity contract is stated over.
///
/// # Errors
///
/// One line when the campaign is unknown, unfinished, canceled, or
/// failed, plus connection failures.
pub fn fetch_report(addr: &str, id: u64) -> Result<(bool, Vec<u8>), String> {
    let mut stream = connect(addr)?;
    let msg = proto::msg("report").field("id", Json::UInt(id)).build();
    proto::write_json(&mut stream, &msg).map_err(|e| e.to_string())?;
    let reply = check_reply(proto::read_json(&mut stream).map_err(|e| e.to_string())?)?;
    let pass = matches!(reply.get("pass"), Some(Json::Bool(true)));
    let bytes = proto::read_blob(&mut stream).map_err(|e| e.to_string())?;
    Ok((pass, bytes))
}

/// Watches a campaign: `on_line` is called with every deterministic
/// progress line (ascending grid order), and the terminal `done`
/// message is returned.
///
/// # Errors
///
/// One line for unknown campaigns, broken streams, or a server
/// shutdown mid-watch.
pub fn watch(addr: &str, id: u64, on_line: &mut dyn FnMut(&Json)) -> Result<Json, String> {
    let mut stream = connect(addr)?;
    let msg = proto::msg("watch").field("id", Json::UInt(id)).build();
    proto::write_json(&mut stream, &msg).map_err(|e| e.to_string())?;
    loop {
        let reply = match proto::read_json(&mut stream) {
            Ok(reply) => check_reply(reply)?,
            Err(ProtoError::Closed) => return Err("server closed the watch stream".into()),
            Err(e) => return Err(e.to_string()),
        };
        match proto::msg_type(&reply) {
            "progress" => {
                if let Some(line) = reply.get("line") {
                    on_line(line);
                }
            }
            "done" => return Ok(reply),
            other => return Err(format!("unexpected message '{other}' in watch stream")),
        }
    }
}
