//! Campaign-as-a-service for the xpipes Lite reproduction.
//!
//! One-shot CLI campaigns (`faultcampaign`) sweep a fault grid on one
//! machine and exit. This crate turns the same machinery into a
//! long-running, multi-tenant service, composing the pieces the repo
//! already has:
//!
//! * **`XPSN` checkpoint containers** are the unit of work
//!   distribution — warm-start state ships to workers, completed grid
//!   points ship back, each integrity-hashed;
//! * **the `--resume` journal format** persists per-point progress, so
//!   a killed worker's shard is reassigned and a killed *server*
//!   resumes on resubmit;
//! * **NDJSON progress streams** feed live `watch` sessions;
//! * **the run ledger** records every completed campaign for
//!   `xpipesobs` trends and the regression sentinel.
//!
//! Split into an engine daemon and an operator CLI (the OPTE
//! `opteadm` pattern): [`server`] is `xpipesd`, [`client`] backs
//! `xpipesadm`, [`worker`] is the compute loop either side of a
//! machine boundary, [`proto`] the framed TCP wire format, and
//! [`spec`] the campaign submission document.
//!
//! The load-bearing invariant everywhere: a campaign is a pure
//! function of (seed, config), so a report computed through sharding,
//! kills, reassignment, and resume is **byte-identical** to the serial
//! one-shot run.

pub mod client;
pub mod proto;
pub mod server;
pub mod spec;
pub mod worker;

pub use server::{Server, ServerConfig};
pub use spec::CampaignSpec;
