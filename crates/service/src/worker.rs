//! The worker side of the campaign service: pull a grid point, compute
//! it, ship the result back as an `XPSN` container.
//!
//! Workers are stateless between points — everything a point needs
//! travels with the assignment (the canonical spec wire form plus, for
//! warm-started campaigns, the shared `XPSN` warm checkpoint blob).
//! That is what makes reassignment after a kill trivial: any worker can
//! recompute any point and produce byte-identical results.
//!
//! The distribution boundary is defensive: a truncated or bit-flipped
//! warm checkpoint, an out-of-range point index, or a malformed spec is
//! rejected with a one-line reason (never a panic), and the server
//! reschedules the point elsewhere.

use std::net::TcpStream;

use xpipes_sim::Json;
use xpipes_traffic::faultcampaign::{campaign_spec, run_grid_point, CompletedPoint, WarmStart};

use crate::proto::{self, ProtoError};
use crate::spec::CampaignSpec;

/// One unit of distributed work, as decoded off the wire.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Server-side campaign id (echoed back with the result).
    pub campaign: u64,
    /// Grid point index to compute.
    pub point: u64,
    /// The campaign this point belongs to.
    pub spec: CampaignSpec,
    /// Warm checkpoint container for warm-started campaigns.
    pub warm: Option<Vec<u8>>,
}

/// Computes one assignment. This is the exact function a killed
/// worker's replacement re-executes — a pure function of the
/// assignment, so reassignment cannot perturb the merged report.
///
/// # Errors
///
/// One line describing why the assignment is unusable: a damaged warm
/// checkpoint (integrity hash, truncation, trailing bytes — all caught
/// by the `XPSN` reader), an out-of-range point, or a failed run.
pub fn execute(assignment: &Assignment) -> Result<CompletedPoint, String> {
    let cfg = assignment.spec.config();
    let grid = assignment.spec.grid();
    if assignment.point >= grid {
        return Err(format!(
            "grid point {} out of range ({grid} points)",
            assignment.point
        ));
    }
    let warm = match &assignment.warm {
        None => None,
        Some(bytes) => Some(
            WarmStart::from_bytes(bytes).map_err(|e| format!("damaged warm checkpoint: {e}"))?,
        ),
    };
    run_grid_point(
        &campaign_spec(),
        &assignment.spec.faults,
        &cfg,
        assignment.point,
        warm.as_ref(),
    )
    .map_err(|e| format!("grid point {} failed: {e}", assignment.point))
}

/// Decodes a `work` message (and its optional warm blob) into an
/// [`Assignment`].
///
/// # Errors
///
/// A one-line message for malformed work messages or a broken stream.
pub fn decode_work(msg: &Json, stream: &mut TcpStream) -> Result<Assignment, String> {
    let campaign = msg
        .get("campaign")
        .and_then(Json::as_u64)
        .ok_or("work message carries no campaign id")?;
    let point = msg
        .get("point")
        .and_then(Json::as_u64)
        .ok_or("work message carries no point index")?;
    let spec = CampaignSpec::from_json(msg.get("spec").ok_or("work message carries no spec")?)?;
    let warm = if matches!(msg.get("warm"), Some(Json::Bool(true))) {
        Some(proto::read_blob(stream).map_err(|e| e.to_string())?)
    } else {
        None
    };
    Ok(Assignment {
        campaign,
        point,
        spec,
        warm,
    })
}

/// Runs the worker loop against a server: register, then poll/compute/
/// report until the server says shutdown or the connection closes.
///
/// # Errors
///
/// One line for connection or protocol failures; a server-initiated
/// shutdown or clean close is `Ok`.
pub fn run_worker(addr: &str) -> Result<(), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    proto::write_json(&mut stream, &proto::msg("worker").build()).map_err(|e| e.to_string())?;
    let hello = proto::read_json(&mut stream).map_err(|e| e.to_string())?;
    if proto::msg_type(&hello) != "ok" {
        return Err(format!(
            "server refused registration: {}",
            hello.render_compact()
        ));
    }
    loop {
        proto::write_json(&mut stream, &proto::msg("poll").build()).map_err(|e| e.to_string())?;
        let msg = match proto::read_json(&mut stream) {
            Ok(msg) => msg,
            Err(ProtoError::Closed) => return Ok(()),
            Err(e) => return Err(e.to_string()),
        };
        match proto::msg_type(&msg) {
            "shutdown" => return Ok(()),
            "work" => {
                let (campaign, point) = (
                    msg.get("campaign").and_then(Json::as_u64).unwrap_or(0),
                    msg.get("point").and_then(Json::as_u64).unwrap_or(0),
                );
                let outcome = decode_work(&msg, &mut stream).and_then(|a| execute(&a));
                match outcome {
                    Ok(done) => {
                        let reply = proto::msg("result")
                            .field("campaign", Json::UInt(campaign))
                            .field("point", Json::UInt(point))
                            .build();
                        proto::write_json(&mut stream, &reply).map_err(|e| e.to_string())?;
                        proto::write_blob(&mut stream, &done.to_bytes())
                            .map_err(|e| e.to_string())?;
                    }
                    Err(reason) => {
                        eprintln!("worker: rejecting point {point}: {reason}");
                        let reply = proto::msg("reject")
                            .field("campaign", Json::UInt(campaign))
                            .field("point", Json::UInt(point))
                            .field("reason", Json::str(reason))
                            .build();
                        proto::write_json(&mut stream, &reply).map_err(|e| e.to_string())?;
                    }
                }
            }
            other => return Err(format!("unexpected message '{other}' while polling")),
        }
    }
}
