//! The campaign-service wire protocol: length-prefixed frames over TCP.
//!
//! Every exchange between `xpipesd`, its workers, and `xpipesadm` is a
//! sequence of frames. A frame is one kind byte, a little-endian `u32`
//! payload length, and the payload:
//!
//! * **JSON frames** (kind `0`) carry one UTF-8 [`Json`] document — all
//!   control messages (`submit`, `poll`, `work`, `result`, `status`,
//!   `watch` streams, errors) are JSON frames with a `"type"` field;
//! * **blob frames** (kind `1`) carry opaque bytes — always an `XPSN`
//!   snapshot container (a `WarmStart` checkpoint shipped to a worker,
//!   or a `CompletedPoint` shipped back), so payload integrity is
//!   verified by the container's own FNV hash when it is decoded, not
//!   by the framing layer.
//!
//! A blob frame never travels alone: the JSON frame immediately before
//! it announces what the blob is (`"warm": true` on a `work` message, a
//! `result` message before a completed-point container). Frames are
//! bounded by [`MAX_FRAME`] so a garbled length prefix cannot make a
//! peer allocate unbounded memory.

use std::io::{self, Read, Write};

use xpipes_sim::Json;

/// Upper bound on a frame payload. Campaign warm-start checkpoints on
/// the reference network are a few hundred kilobytes; anything near
/// this bound indicates a corrupted length prefix, not real work.
pub const MAX_FRAME: usize = 64 << 20;

const KIND_JSON: u8 = 0;
const KIND_BLOB: u8 = 1;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A control message.
    Json(Json),
    /// An opaque byte payload (an `XPSN` snapshot container).
    Blob(Vec<u8>),
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum ProtoError {
    /// The peer closed the connection at a frame boundary — the normal
    /// end of a conversation, not a protocol violation.
    Closed,
    /// An I/O failure, including a connection cut mid-frame.
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// An unknown frame-kind byte.
    BadKind(u8),
    /// A JSON frame whose payload does not parse.
    BadJson(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::Io(e) => write!(f, "connection error: {e}"),
            ProtoError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte bound")
            }
            ProtoError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            ProtoError::BadJson(e) => write!(f, "malformed JSON frame: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Writes one JSON frame.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_json(w: &mut impl Write, msg: &Json) -> io::Result<()> {
    let payload = msg.render_compact();
    write_frame(w, KIND_JSON, payload.as_bytes())
}

/// Writes one blob frame.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_blob(w: &mut impl Write, bytes: &[u8]) -> io::Result<()> {
    write_frame(w, KIND_BLOB, bytes)
}

fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME, "oversized frame written");
    let mut head = [0u8; 5];
    head[0] = kind;
    head[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads the next frame.
///
/// # Errors
///
/// [`ProtoError::Closed`] on a clean end-of-stream at a frame boundary;
/// other variants describe a cut or garbled stream.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, ProtoError> {
    let mut kind = [0u8; 1];
    // A clean EOF before the first header byte is a closed conversation;
    // an EOF anywhere later is a cut frame.
    match r.read(&mut kind) {
        Ok(0) => return Err(ProtoError::Closed),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return read_frame(r),
        Err(e) => return Err(ProtoError::Io(e)),
    }
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes).map_err(ProtoError::Io)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(ProtoError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(ProtoError::Io)?;
    match kind[0] {
        KIND_BLOB => Ok(Frame::Blob(payload)),
        KIND_JSON => {
            let text = String::from_utf8(payload)
                .map_err(|_| ProtoError::BadJson("payload is not UTF-8".into()))?;
            Json::parse(&text)
                .map(Frame::Json)
                .map_err(ProtoError::BadJson)
        }
        other => Err(ProtoError::BadKind(other)),
    }
}

/// Reads the next frame and requires it to be JSON.
///
/// # Errors
///
/// [`ProtoError::BadJson`] when a blob arrives instead, plus every
/// [`read_frame`] failure.
pub fn read_json(r: &mut impl Read) -> Result<Json, ProtoError> {
    match read_frame(r)? {
        Frame::Json(json) => Ok(json),
        Frame::Blob(_) => Err(ProtoError::BadJson(
            "expected a JSON frame, got a blob".into(),
        )),
    }
}

/// Reads the next frame and requires it to be a blob.
///
/// # Errors
///
/// [`ProtoError::BadJson`] when JSON arrives instead, plus every
/// [`read_frame`] failure.
pub fn read_blob(r: &mut impl Read) -> Result<Vec<u8>, ProtoError> {
    match read_frame(r)? {
        Frame::Blob(bytes) => Ok(bytes),
        Frame::Json(_) => Err(ProtoError::BadJson(
            "expected a blob frame, got JSON".into(),
        )),
    }
}

/// Starts a control message of the given `"type"`.
#[must_use]
pub fn msg(kind: &str) -> xpipes_sim::json::ObjectBuilder {
    Json::object().field("type", Json::str(kind))
}

/// The message's `"type"` field.
#[must_use]
pub fn msg_type(json: &Json) -> &str {
    json.get("type").and_then(Json::as_str).unwrap_or("")
}

/// A one-line error reply.
#[must_use]
pub fn error_msg(message: impl Into<String>) -> Json {
    msg("error")
        .field("message", Json::str(message.into()))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_byte_pipe() {
        let mut wire = Vec::new();
        let hello = msg("hello").field("id", Json::UInt(7)).build();
        write_json(&mut wire, &hello).unwrap();
        write_blob(&mut wire, b"XPSN-ish payload").unwrap();
        write_json(&mut wire, &msg("bye").build()).unwrap();

        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), Frame::Json(hello));
        assert_eq!(read_blob(&mut r).unwrap(), b"XPSN-ish payload");
        let bye = read_json(&mut r).unwrap();
        assert_eq!(msg_type(&bye), "bye");
        assert!(matches!(read_frame(&mut r), Err(ProtoError::Closed)));
    }

    #[test]
    fn oversized_and_garbled_frames_are_rejected() {
        // A length prefix past the bound.
        let mut wire = vec![KIND_JSON];
        wire.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(ProtoError::TooLarge(_))
        ));

        // An unknown kind byte.
        let mut wire = vec![9u8];
        wire.extend_from_slice(&2u32.to_le_bytes());
        wire.extend_from_slice(b"{}");
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(ProtoError::BadKind(9))
        ));

        // A cut mid-frame is an I/O error, not a clean close.
        let mut wire = Vec::new();
        write_blob(&mut wire, &[0u8; 64]).unwrap();
        wire.truncate(wire.len() - 10);
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(ProtoError::Io(_))
        ));

        // A JSON frame that does not parse.
        let mut wire = vec![KIND_JSON];
        wire.extend_from_slice(&3u32.to_le_bytes());
        wire.extend_from_slice(b"{x}");
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(ProtoError::BadJson(_))
        ));
    }

    #[test]
    fn expectation_helpers_flag_the_wrong_kind() {
        let mut wire = Vec::new();
        write_blob(&mut wire, b"blob").unwrap();
        assert!(matches!(
            read_json(&mut wire.as_slice()),
            Err(ProtoError::BadJson(_))
        ));
        let mut wire = Vec::new();
        write_json(&mut wire, &msg("x").build()).unwrap();
        assert!(matches!(
            read_blob(&mut wire.as_slice()),
            Err(ProtoError::BadJson(_))
        ));
    }

    #[test]
    fn errors_render_one_line() {
        for e in [
            ProtoError::Closed,
            ProtoError::Io(io::Error::new(io::ErrorKind::BrokenPipe, "pipe")),
            ProtoError::TooLarge(1 << 30),
            ProtoError::BadKind(3),
            ProtoError::BadJson("bad".into()),
        ] {
            let text = e.to_string();
            assert!(!text.is_empty() && !text.contains('\n'), "{text}");
        }
    }
}
