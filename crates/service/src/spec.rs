//! Campaign specifications as submitted to `xpipesd`.
//!
//! A [`CampaignSpec`] is the JSON document an operator hands to
//! `xpipesadm submit`: which fault models to sweep, how many injection
//! cycles, the seed, optionally a custom error-rate grid and a warm-up
//! budget. The server normalizes it into the [`CampaignConfig`] the
//! `faultcampaign` machinery runs, so a service-run campaign is the
//! *same pure function* of (seed, config) as a one-shot CLI run — which
//! is what makes the merged report byte-identical to the reference.
//!
//! Error rates get special treatment on the wire: the human-facing
//! `rates` field carries decimals, but the spec's canonical wire form
//! adds `rates_bits` — the exact IEEE-754 bit patterns as hex — so a
//! spec relayed between server and workers can never drift from the
//! submitted grid by a parse round-trip, and the journal fingerprint
//! stays stable.

use xpipes_sim::{FaultKind, Json};
use xpipes_traffic::faultcampaign::{campaign_spec, config_fingerprint, grid_size, CampaignConfig};

/// A normalized campaign submission.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Operator-chosen label (status displays only; the report keeps the
    /// reference network's own name).
    pub name: String,
    /// Fault models to sweep.
    pub faults: Vec<FaultKind>,
    /// Injection cycles per grid point.
    pub cycles: u64,
    /// Master seed.
    pub seed: u64,
    /// Error-rate grid override; `None` keeps the
    /// [`CampaignConfig::new`] defaults.
    pub rates: Option<Vec<f64>>,
    /// Warm-up cycles before branching grid points off a shared `XPSN`
    /// checkpoint; 0 runs every point cold.
    pub warm_start: u64,
    /// Flight-recorder depth override.
    pub flight_depth: Option<usize>,
}

impl CampaignSpec {
    /// The campaign configuration this spec normalizes to.
    #[must_use]
    pub fn config(&self) -> CampaignConfig {
        let mut cfg = CampaignConfig::new(self.seed, self.cycles);
        if let Some(rates) = &self.rates {
            cfg.error_rates = rates.clone();
        }
        if let Some(depth) = self.flight_depth {
            cfg.flight_recorder_depth = depth;
        }
        cfg
    }

    /// Grid points this campaign executes (baseline included).
    #[must_use]
    pub fn grid(&self) -> u64 {
        grid_size(&self.faults, &self.config())
    }

    /// The resume-journal config fingerprint — identical to what a
    /// one-shot `faultcampaign --resume` run computes for the same
    /// parameters, so journals and ledger records interoperate.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        config_fingerprint(&campaign_spec(), &self.faults, &self.config())
    }

    /// The canonical wire form: human-readable fields plus exact
    /// `rates_bits` so relaying a spec cannot perturb the grid.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut b = Json::object()
            .field("name", Json::str(&self.name))
            .field(
                "faults",
                Json::Array(self.faults.iter().map(|k| Json::str(k.name())).collect()),
            )
            .field("cycles", Json::UInt(self.cycles))
            .field("seed", Json::UInt(self.seed));
        if let Some(rates) = &self.rates {
            b = b
                .field(
                    "rates",
                    Json::Array(rates.iter().map(|&r| Json::Fixed(r, 4)).collect()),
                )
                .field(
                    "rates_bits",
                    Json::Array(
                        rates
                            .iter()
                            .map(|r| Json::str(format!("{:016x}", r.to_bits())))
                            .collect(),
                    ),
                );
        }
        if self.warm_start > 0 {
            b = b.field("warm_start", Json::UInt(self.warm_start));
        }
        if let Some(depth) = self.flight_depth {
            b = b.field("flight_depth", Json::UInt(depth as u64));
        }
        b.build()
    }

    /// Parses a submission.
    ///
    /// `faults` may be an array of fault-model names or the string
    /// `"all"` (also the default when absent). `rates` accepts decimals;
    /// when the exact `rates_bits` form is present it wins, so a spec
    /// that has been through [`CampaignSpec::to_json`] round-trips
    /// bit-exactly.
    ///
    /// # Errors
    ///
    /// A one-line message naming the offending field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let name = match json.get("name") {
            None => "campaign".to_string(),
            Some(v) => v
                .as_str()
                .ok_or("spec field 'name' must be a string")?
                .to_string(),
        };
        let faults = parse_faults(json.get("faults"))?;
        let cycles = parse_u64(json, "cycles", 20_000)?;
        let seed = parse_u64(json, "seed", 7)?;
        let warm_start = parse_u64(json, "warm_start", 0)?;
        let flight_depth = match json.get("flight_depth") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or("spec field 'flight_depth' must be a non-negative integer")?
                    as usize,
            ),
        };
        let rates = parse_rates(json)?;
        Ok(CampaignSpec {
            name,
            faults,
            cycles,
            seed,
            rates,
            warm_start,
            flight_depth,
        })
    }
}

fn parse_u64(json: &Json, field: &str, default: u64) -> Result<u64, String> {
    match json.get(field) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("spec field '{field}' must be a non-negative integer")),
    }
}

fn parse_faults(value: Option<&Json>) -> Result<Vec<FaultKind>, String> {
    let Some(value) = value else {
        return Ok(FaultKind::ALL.to_vec());
    };
    if let Some(s) = value.as_str() {
        if s == "all" {
            return Ok(FaultKind::ALL.to_vec());
        }
        return Err(format!(
            "spec field 'faults' must be \"all\" or an array of fault names, got \"{s}\""
        ));
    }
    let items = value
        .as_array()
        .ok_or("spec field 'faults' must be \"all\" or an array of fault names")?;
    if items.is_empty() {
        return Err("spec field 'faults' must name at least one fault model".to_string());
    }
    let mut faults = Vec::with_capacity(items.len());
    for item in items {
        let name = item
            .as_str()
            .ok_or("spec field 'faults' entries must be strings")?;
        let kind =
            FaultKind::from_name(name).ok_or_else(|| format!("unknown fault model '{name}'"))?;
        if faults.contains(&kind) {
            return Err(format!("fault model '{name}' listed twice"));
        }
        faults.push(kind);
    }
    Ok(faults)
}

fn parse_rates(json: &Json) -> Result<Option<Vec<f64>>, String> {
    // The exact bit-pattern form wins over the decimal form: it is what
    // the server emits when relaying a spec to workers.
    if let Some(bits) = json.get("rates_bits") {
        let items = bits
            .as_array()
            .ok_or("spec field 'rates_bits' must be an array of hex strings")?;
        let mut rates = Vec::with_capacity(items.len());
        for item in items {
            let hex = item
                .as_str()
                .ok_or("spec field 'rates_bits' entries must be hex strings")?;
            let raw = u64::from_str_radix(hex, 16)
                .map_err(|_| format!("bad rate bit pattern '{hex}'"))?;
            rates.push(f64::from_bits(raw));
        }
        return validate_rates(rates).map(Some);
    }
    match json.get("rates") {
        None => Ok(None),
        Some(v) => {
            let items = v
                .as_array()
                .ok_or("spec field 'rates' must be an array of numbers")?;
            let mut rates = Vec::with_capacity(items.len());
            for item in items {
                rates.push(
                    item.as_f64()
                        .ok_or("spec field 'rates' entries must be numbers")?,
                );
            }
            validate_rates(rates).map(Some)
        }
    }
}

fn validate_rates(rates: Vec<f64>) -> Result<Vec<f64>, String> {
    if rates.is_empty() {
        return Err("spec field 'rates' must list at least one error rate".to_string());
    }
    for &r in &rates {
        if !(0.0..=1.0).contains(&r) {
            return Err(format!("error rate {r} outside [0, 1]"));
        }
    }
    Ok(rates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_defaults_to_the_full_sweep() {
        let spec = CampaignSpec::from_json(&Json::parse("{}").unwrap()).unwrap();
        assert_eq!(spec.name, "campaign");
        assert_eq!(spec.faults, FaultKind::ALL.to_vec());
        assert_eq!(spec.cycles, 20_000);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.rates, None);
        assert_eq!(spec.warm_start, 0);
        assert_eq!(spec.config(), CampaignConfig::new(7, 20_000));
        assert_eq!(spec.grid(), 16);
    }

    #[test]
    fn wire_form_round_trips_bit_exactly() {
        let text = r#"{"name":"svc","faults":["flit-corruption","ack-loss"],
                       "cycles":4000,"seed":11,"rates":[0.01,0.03],
                       "warm_start":500,"flight_depth":64}"#;
        let spec = CampaignSpec::from_json(&Json::parse(text).unwrap()).unwrap();
        assert_eq!(
            spec.faults,
            vec![FaultKind::FlitCorruption, FaultKind::AckLoss]
        );
        let relayed = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(relayed, spec);
        assert_eq!(relayed.fingerprint(), spec.fingerprint());
        // The decimal parse itself is exact: 0.01 through the JSON
        // parser matches the CLI's own float parse bit-for-bit.
        assert_eq!(spec.rates.as_deref(), Some(&[0.01, 0.03][..]));
    }

    #[test]
    fn fingerprint_matches_the_one_shot_run() {
        let spec = CampaignSpec::from_json(
            &Json::parse(r#"{"faults":"all","cycles":8000,"seed":7}"#).unwrap(),
        )
        .unwrap();
        let cfg = CampaignConfig::new(7, 8000);
        assert_eq!(
            spec.fingerprint(),
            config_fingerprint(&campaign_spec(), &FaultKind::ALL, &cfg)
        );
    }

    #[test]
    fn bad_specs_get_one_line_errors() {
        for (text, needle) in [
            (r#"{"faults":["bogus"]}"#, "unknown fault model"),
            (r#"{"faults":[]}"#, "at least one"),
            (r#"{"faults":["ack-loss","ack-loss"]}"#, "listed twice"),
            (r#"{"cycles":"many"}"#, "cycles"),
            (r#"{"rates":[2.0]}"#, "outside"),
            (r#"{"rates":[]}"#, "at least one"),
            (r#"{"rates_bits":["zz"]}"#, "bit pattern"),
            (r#"{"name":7}"#, "name"),
        ] {
            let err = CampaignSpec::from_json(&Json::parse(text).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{text}: {err}");
            assert!(!err.contains('\n'), "{err}");
        }
    }
}
