//! The full SunMap flow: generate candidate topologies for the VOPD
//! application (mesh variants + a custom clustered topology), evaluate
//! each with the synthesis library, floorplanner and simulator, and pick
//! a winner — the paper's "Shift Efforts at a Higher Abstraction Layer".
//!
//! Run with: `cargo run --release --example custom_topology`

use xpipes_sunmap::apps;
use xpipes_sunmap::mapping::{build_spec, map_to_mesh};
use xpipes_sunmap::pareto::pareto_front;
use xpipes_sunmap::selection::{optimize_buffers, select, SelectionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = apps::vopd()?;
    println!(
        "selecting a topology for '{}' ({} cores)...",
        app.name(),
        app.core_count()
    );

    let mut config = SelectionConfig::default();
    config.eval.warmup = 500;
    config.eval.window = 5_000;

    let outcome = select(&app, &config)?;
    println!("\ncandidates (*, winner):");
    print!("{outcome}");

    if !outcome.failures.is_empty() {
        println!("skipped candidates:");
        for (name, why) in &outcome.failures {
            println!("  {name}: {why}");
        }
    }

    let front = pareto_front(&outcome.reports);
    println!("\nPareto front (area / power / latency):");
    for i in front {
        let r = &outcome.reports[i];
        println!(
            "  {:<10} {:.3} mm²  {:.1} mW  {:.1} ns",
            r.name, r.area_mm2, r.power_mw, r.avg_latency_ns
        );
    }

    let w = outcome.winner();
    println!(
        "\nwinner: {} — {:.3} mm² at {:.0} MHz, {:.1} ns mean latency",
        w.name, w.area_mm2, w.fmax_mhz, w.avg_latency_ns
    );

    // Component optimization pass: let the routing co-design recommend
    // per-switch buffer depths for a mesh build of the same app, and see
    // what the deeper queues buy.
    let mapping = map_to_mesh(&app, 3, 4, 1, 42)?;
    let spec = build_spec(&app, &mapping, 32)?;
    let (optimized, report) = optimize_buffers(&spec, &app, &config.eval)?;
    println!(
        "\nbuffer co-design on mesh3x4: {} switches deepened; {:.3} mm², {:.1} cyc latency",
        optimized.queue_depth_overrides.len(),
        report.area_mm2,
        report.avg_latency_cycles
    );
    Ok(())
}
