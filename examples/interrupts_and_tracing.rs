//! Sideband interrupts and waveform tracing: a DMA-style flow where the
//! CPU programs a device, the device raises a sideband interrupt on
//! completion, and the whole exchange is captured as a VCD waveform.
//!
//! Run with: `cargo run --release --example interrupts_and_tracing`

use xpipes::noc::Noc;
use xpipes_ocp::Request;
use xpipes_topology::builders::mesh;
use xpipes_topology::NocSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = mesh(2, 1)?;
    let cpu = b.attach_initiator("cpu", (0, 0))?;
    let dma = b.attach_target("dma", (1, 0))?;
    let mut spec = NocSpec::new("irqdemo", b.into_topology());
    spec.map_address(dma, 0x0, 0x1000)?;

    let mut noc = Noc::new(&spec)?;
    noc.enable_trace();

    // 1. CPU programs the device's registers.
    noc.submit(cpu, Request::write(0x00, vec![0x1000])?)?; // src
    noc.submit(cpu, Request::write(0x08, vec![0x2000])?)?; // dst
    noc.submit(cpu, Request::write(0x10, vec![64])?)?; // length
    noc.run_until_idle(5_000);
    println!(
        "device programmed: {} pending interrupts",
        noc.pending_interrupts(cpu)?
    );

    // 2. The device signals completion with a sideband interrupt packet.
    noc.raise_interrupt(dma, cpu)?;
    noc.run_until_idle(5_000);
    println!(
        "after completion:  {} pending interrupts",
        noc.pending_interrupts(cpu)?
    );
    assert!(noc.take_interrupt(cpu)?);

    // 3. The interrupt handler reads back device state.
    noc.submit(cpu, Request::read(0x10, 1)?)?;
    noc.run_until_idle(5_000);
    let resp = noc.take_response(cpu)?.expect("readback completes");
    println!("status readback:   {:?}", resp.data());

    // 4. Dump the waveform (loadable in GTKWave).
    let vcd = noc.vcd().expect("tracing enabled");
    let path = std::env::temp_dir().join("xpipes_irqdemo.vcd");
    std::fs::write(&path, &vcd)?;
    println!(
        "wrote {} lines of VCD ({} signals) to {}",
        vcd.lines().count(),
        vcd.matches("$var").count(),
        path.display()
    );
    Ok(())
}
