//! MPEG-4 decoder on a mesh: the paper's motivating scenario — map a
//! communication-intensive media application onto an xpipes mesh, replay
//! its traffic, and inspect latency and link loads.
//!
//! Run with: `cargo run --release --example mesh_mpeg4`

use xpipes::noc::Noc;
use xpipes_sunmap::codesign::{link_loads, load_report};
use xpipes_sunmap::{apps, build_spec, map_to_mesh};
use xpipes_traffic::appdriven::AppTraffic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = apps::mpeg4_decoder()?;
    println!(
        "application '{}': {} cores, {} flows, {:.0} MB/s total",
        app.name(),
        app.core_count(),
        app.flows().len(),
        app.total_bandwidth()
    );

    // SunMap mapping stage: anneal the placement on a 3x4 mesh.
    let mapping = map_to_mesh(&app, 3, 4, 2, 42)?;
    println!("mapping cost (bw×hops): {:.0}", mapping.cost(&app));
    for core in app.cores() {
        let (x, y) = mapping.coord_of(core);
        println!(
            "  {:<10} -> switch ({x}, {y})",
            app.core_name(core).unwrap_or("?")
        );
    }

    // Instantiate and replay the application traffic.
    let spec = build_spec(&app, &mapping, 32)?;
    let mut noc = Noc::new(&spec)?;
    let mut traffic = AppTraffic::new(&spec, &app, 2.0e-5, 4, 7)?;
    traffic.run(&mut noc, 20_000);
    noc.run_until_idle(50_000);

    let stats = noc.stats();
    println!(
        "\nsimulated {} cycles: {} packets ({} flits), avg latency {:.1} cycles, \
         {} retransmissions",
        stats.cycles,
        stats.packets_delivered,
        stats.flits_routed,
        stats
            .transaction_latency
            .mean()
            .max(stats.request_latency.mean()),
        stats.retransmissions
    );

    // Routing co-design view: how evenly is traffic spread on the links?
    let loads = link_loads(&spec, &app)?;
    let report = load_report(&loads);
    println!(
        "link loads: {} loaded links, max {:.0} MB/s, mean {:.0} MB/s, imbalance {:.2}x",
        report.loaded_links, report.max_mbps, report.mean_mbps, report.imbalance
    );
    Ok(())
}
