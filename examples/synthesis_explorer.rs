//! Synthesis design-space explorer: sweep flit widths and switch radices
//! through the synthesis-estimation library, printing area / power /
//! fmax — "Quick and Accurate Estimations" at the higher abstraction
//! layer, as the paper puts it.
//!
//! Run with: `cargo run --release --example synthesis_explorer`

use xpipes::config::{NiConfig, SwitchConfig};
use xpipes_synth::components::{initiator_ni_netlist, switch_netlist, target_ni_netlist};
use xpipes_synth::report::{synthesize, synthesize_max_speed, SynthError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target_mhz = 1000.0;

    println!("network interfaces (target {target_mhz:.0} MHz):");
    println!(
        "{:<10} {:>6} {:>12} {:>10} {:>8} {:>7}",
        "component", "flit", "area (mm²)", "power (mW)", "gates", "DFFs"
    );
    for w in [16u32, 32, 64, 128] {
        for (label, netlist) in [
            ("ni_init", initiator_ni_netlist(&NiConfig::new(w))),
            ("ni_tgt", target_ni_netlist(&NiConfig::new(w))),
        ] {
            let r = synthesize(&netlist, target_mhz)?;
            println!(
                "{label:<10} {w:>6} {:>12.4} {:>10.2} {:>8} {:>7}",
                r.area_mm2, r.power_mw, r.gate_count, r.dff_count
            );
        }
    }

    println!("\nswitches (target {target_mhz:.0} MHz, 32-bit flits):");
    println!(
        "{:<10} {:>12} {:>10} {:>11} {:>7}",
        "radix", "area (mm²)", "power (mW)", "fmax (MHz)", "depth"
    );
    for radix in [3usize, 4, 5, 6, 8] {
        let netlist = switch_netlist(&SwitchConfig::new(radix, radix, 32));
        let r = match synthesize(&netlist, target_mhz) {
            Ok(r) => r,
            Err(SynthError::TargetUnreachable { .. }) => synthesize_max_speed(&netlist)?,
            Err(e) => return Err(e.into()),
        };
        let max = synthesize_max_speed(&netlist)?;
        println!(
            "{:<10} {:>12.4} {:>10.2} {:>11.0} {:>7}",
            format!("{radix}x{radix}"),
            r.area_mm2,
            r.power_mw,
            max.fmax_mhz,
            r.critical_depth
        );
    }

    println!("\narea breakdown of the paper's 4x4 32-bit switch:");
    let r = synthesize(&switch_netlist(&SwitchConfig::new(4, 4, 32)), target_mhz)?;
    let mut blocks: Vec<(&String, &f64)> = r.area_breakdown_um2.iter().collect();
    blocks.sort_by(|a, b| b.1.partial_cmp(a.1).expect("finite areas"));
    let total: f64 = r.area_breakdown_um2.values().sum();
    for (name, um2) in blocks {
        println!(
            "  {name:<12} {um2:>10.0} µm²  ({:>4.1}%)",
            um2 / total * 100.0
        );
    }
    Ok(())
}
