//! The xpipesCompiler end to end: parse a NoC specification file, print
//! the routing tables, emit the orthogonal synthesis (Verilog) and
//! simulation (SystemC) views, then instantiate and smoke-test the
//! simulation view.
//!
//! Run with: `cargo run --release --example noc_compiler`

use xpipes::config::SwitchConfig;
use xpipes_compiler::{emit, instantiate, parse_spec, print_spec, routing_report};
use xpipes_ocp::Request;
use xpipes_synth::components::switch_netlist;
use xpipes_topology::NiId;

const SPEC: &str = "
# A heterogeneous 3-switch NoC: CPU + DSP sharing an SDRAM and a SRAM.
noc media3 {
  flit_width 32
  arbitration rr
  queue_depth 6
  switch hub
  switch left
  switch right
  link hub.0 <-> left.0 stages 1
  link hub.1 <-> right.0 stages 2
  initiator cpu @ left.1
  initiator dsp @ right.1
  target sdram @ hub.2 base 0x00000000 size 0x100000
  target sram  @ right.2 base 0x00100000 size 0x10000
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = parse_spec(SPEC)?;
    spec.validate()?;
    println!("parsed '{}' — normalised specification:\n", spec.name);
    println!("{}", print_spec(&spec));

    println!("{}", routing_report(&spec)?);

    let verilog = emit::verilog_top(&spec);
    println!(
        "synthesis view: {} lines of structural Verilog",
        verilog.lines().count()
    );
    for line in verilog
        .lines()
        .filter(|l| l.contains("xpipes_") && l.starts_with("  "))
    {
        println!("  {}", line.trim());
    }

    let systemc = emit::systemc_top(&spec);
    println!(
        "\nsimulation view: {} lines of SystemC",
        systemc.lines().count()
    );

    // Gate-level view of one component, as the backend would consume it.
    let gates = emit::gate_level_verilog(&switch_netlist(&SwitchConfig::new(3, 3, 32)));
    println!(
        "gate-level 3x3 switch: {} instance lines",
        gates.lines().count() - 4
    );

    // Smoke-test the simulation view.
    let mut noc = instantiate(&spec)?;
    let cpu = spec
        .topology
        .ni_by_name("cpu")
        .map(|a| a.ni)
        .unwrap_or(NiId(0));
    noc.submit(cpu, Request::write(0x40, vec![7])?)?;
    noc.submit(cpu, Request::read(0x40, 1)?)?;
    assert!(noc.run_until_idle(10_000));
    let resp = noc.take_response(cpu)?.expect("read completes");
    println!(
        "\nsimulation smoke test: read returned {:?} after {} cycles",
        resp.data(),
        noc.now().as_u64()
    );
    Ok(())
}
