//! Quickstart: describe a small NoC, run transactions through it, and
//! read the statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use xpipes::noc::Noc;
use xpipes_ocp::Request;
use xpipes_topology::builders::mesh;
use xpipes_topology::NocSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the platform: a 2x2 mesh with one CPU and two memories.
    let mut builder = mesh(2, 2)?;
    let cpu = builder.attach_initiator("cpu", (0, 0))?;
    let mem0 = builder.attach_target("mem0", (1, 0))?;
    let mem1 = builder.attach_target("mem1", (1, 1))?;

    let mut spec = NocSpec::new("quickstart", builder.into_topology());
    spec.flit_width = 32;
    spec.map_address(mem0, 0x0000_0000, 0x10_0000)?;
    spec.map_address(mem1, 0x0010_0000, 0x10_0000)?;
    spec.validate()?;

    // 2. Instantiate the cycle-accurate network (the xpipesCompiler's
    //    simulation view).
    let mut noc = Noc::new(&spec)?;

    // 3. Issue OCP transactions from the CPU.
    noc.submit(
        cpu,
        Request::write(0x0000_0040, vec![0xDEAD_BEEF, 0x0BAD_F00D])?,
    )?;
    noc.submit(cpu, Request::write(0x0010_0040, vec![42])?)?;
    noc.submit(cpu, Request::read(0x0000_0040, 2)?)?;

    // 4. Run until the network drains.
    assert!(noc.run_until_idle(10_000), "network should drain");

    // 5. Collect the read response and inspect statistics.
    let resp = noc.take_response(cpu)?.expect("read completed");
    println!("read returned: {:x?}", resp.data());
    assert_eq!(resp.data(), &[0xDEAD_BEEF, 0x0BAD_F00D]);
    assert_eq!(noc.memory(mem1)?.peek(0x40), 42);

    let stats = noc.stats();
    println!(
        "simulated {} cycles: {} packets delivered, {} flits routed, \
         avg transaction latency {:.1} cycles",
        stats.cycles,
        stats.packets_delivered,
        stats.flits_routed,
        stats.transaction_latency.mean()
    );
    Ok(())
}
